// asyncrvd — the resident experiment service (DESIGN.md §9).
//
// One process owns the expensive, reusable state of the experiment
// pipeline — the interned GraphCache, the persistent SweepCache, a pool of
// pipeline worker threads — and serves RUN/SWEEP/SEARCH requests over a
// local Unix-domain socket, speaking asyncrv.proto.v1 (service/protocol.h).
// A request ships canonical spec forms, so daemon runs fingerprint (and
// therefore cache) identically to batch runs of the same specs; streamed
// `row` payloads are byte-identical to the JsonlSink lines a local
// ExperimentPipeline would emit, in spec order.
//
// Threading model:
//
//  * The MAIN thread runs a poll() event loop: it accepts connections,
//    feeds each connection's RequestParser, answers control verbs
//    (PING/STATUS/EVICT/...) inline, admits jobs, and owns every
//    connection's write buffer. All response lines are appended whole, so
//    frames are line-atomic by construction.
//  * JOB worker threads (ServerOptions::jobs) pull admitted jobs off a
//    bounded queue and run each through an ExperimentPipeline (with
//    `threads_per_job` pipeline workers, batch mode on by default). They
//    never touch sockets: output is posted to a mutex-protected outbox and
//    a self-pipe byte wakes the main loop to route it — to the submitting
//    connection by generation id (a client that disconnected mid-job just
//    drops its output; the work still completes and still populates the
//    caches), and to every SUBSCRIBE-d connection for event lines.
//
// Admission control: at most `jobs + max_queue` jobs in flight; beyond
// that a submission is rejected loudly with `err busy` (and counted), so
// an overloaded daemon degrades predictably instead of buffering without
// bound.
//
// Memory cap: after every job, interned graphs are LRU-evicted until
// resident bytes fit `memory_cap` (GraphCache::evict_until), so a
// long-lived daemon serving large-graph sweeps keeps a bounded footprint
// while hot topologies stay resident.
//
// Drain: DRAIN (or SIGTERM via signal_drain()) stops admitting work,
// finishes everything already admitted, answers each drain-waiter with
// `ok drained`, tells subscribers `end drained`, flushes, and run()
// returns 0. SHUTDOWN is the impatient variant: queued-but-unstarted jobs
// are discarded (active ones finish — pipelines are not cancellable
// mid-scenario) and the socket closes immediately after.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runner/cache.h"
#include "runner/graph_cache.h"
#include "service/protocol.h"

namespace asyncrv::service {

struct ServerOptions {
  std::string socket_path = "/tmp/asyncrvd.sock";
  /// Sweep-cache directory; empty = no persistent cache.
  std::string cache_dir;
  /// Store behaviour of the sweep cache (packed segments, durability).
  /// A long-lived daemon serving large sweeps wants `packed = true` —
  /// group-commit fsync instead of two fsyncs per cell (DESIGN.md §10).
  runner::SweepCacheOptions cache;
  /// LRU-evict interned graphs down to this many resident bytes after
  /// every job; 0 = uncapped.
  std::uint64_t memory_cap = 0;
  int jobs = 2;             ///< concurrent pipeline jobs (worker threads)
  int threads_per_job = 0;  ///< pipeline threads per job; 0 = hardware
  /// Jobs allowed to wait beyond the `jobs` active ones before `err busy`.
  int max_queue = 8;
  bool batch = true;        ///< run rendezvous cells on the lockstep engine
  std::size_t batch_size = 256;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Creates, binds and listens on the Unix socket (unlinking any stale
  /// file at the path first). Separate from run() so a caller can start
  /// the loop on a thread AFTER the socket provably accepts connections.
  /// Throws std::runtime_error on failure.
  void bind();

  /// The event loop. Returns the process exit code: 0 after a graceful
  /// drain or shutdown. The socket file is unlinked on the way out.
  int run();

  /// Async-signal-safe drain trigger (a SIGTERM handler may call this):
  /// equivalent to a DRAIN request with no waiter.
  void signal_drain();

  const ServerOptions& options() const { return options_; }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t gen = 0;  ///< identity for output routing (never reused)
    RequestParser parser;
    std::string out;        ///< pending response bytes (main thread only)
    bool subscribed = false;
    bool drain_waiter = false;  ///< owed an `ok drained` at drain completion
  };

  struct Job {
    std::uint64_t id = 0;
    std::uint64_t conn_gen = 0;
    const char* kind = "sweep";  ///< response-head label: run|sweep|search
    std::vector<runner::ExperimentSpec> specs;
  };

  /// A worker→main message. `job_done` entries also carry the accounting
  /// side effects (in-flight decrement, drain check, post-job eviction).
  struct Outbound {
    std::uint64_t conn_gen = 0;  ///< 0 = broadcast to subscribers
    std::string bytes;
    bool job_done = false;
  };

  void worker_main();
  void run_job(const Job& job);
  void post(std::uint64_t conn_gen, std::string bytes, bool job_done = false);
  void drain_outbox();

  void accept_ready();
  void read_ready(Connection& conn);
  void write_ready(Connection& conn);
  void close_connection(Connection& conn);
  void handle_request(Connection& conn, const Request& request);
  void admit_job(Connection& conn, const char* kind,
                 std::vector<runner::ExperimentSpec> specs);
  std::string status_response() const;
  /// "ok metrics" + the live registry snapshot in asyncrv.metrics.v1 text
  /// form (whose own `end` line terminates the frame).
  std::string metrics_response() const;
  void finish_drain();  ///< answer waiters/subscribers, mark loop done

  ServerOptions options_;
  std::optional<runner::SweepCache> cache_;
  runner::GraphCache graphs_;

  int listen_fd_ = -1;
  int wake_rd_ = -1, wake_wr_ = -1;      ///< worker → main loop
  int signal_rd_ = -1, signal_wr_ = -1;  ///< signal handler → main loop
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::uint64_t next_gen_ = 1;
  std::uint64_t next_job_id_ = 1;

  // Main-thread state.
  bool draining_ = false;
  bool stopping_ = false;  ///< loop exit requested (drain done or SHUTDOWN)
  int in_flight_ = 0;      ///< admitted jobs not yet completed
  std::uint64_t busy_rejections_ = 0;
  std::uint64_t jobs_completed_ = 0;

  // Worker-shared state.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool workers_stop_ = false;
  std::vector<std::thread> workers_;

  std::mutex outbox_mutex_;
  std::vector<Outbound> outbox_;

  std::atomic<std::uint64_t> rows_streamed_{0};
};

}  // namespace asyncrv::service
