#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "runner/encoding.h"
#include "service/protocol.h"

namespace asyncrv::service {

namespace {

/// First token / remainder split of a response line.
std::pair<std::string, std::string> take_token(const std::string& s) {
  const std::size_t sp = s.find(' ');
  if (sp == std::string::npos) return {s, ""};
  return {s.substr(0, sp), s.substr(sp + 1)};
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rbuf_(std::move(other.rbuf_)),
      last_error_(std::move(other.last_error_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    rbuf_ = std::move(other.rbuf_);
    last_error_ = std::move(other.last_error_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool Client::connect(const std::string& socket_path, int retry_ms) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    last_error_ = "socket path too long: " + socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retry_ms);
  while (true) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      last_error_ = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      fd_ = fd;
      return true;
    }
    last_error_ = "connect " + socket_path + ": " + std::strerror(errno);
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

bool Client::send_raw(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t sent = ::send(fd_, bytes.data() + off, bytes.size() - off,
                                MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      last_error_ = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

std::optional<std::string> Client::read_line() {
  while (true) {
    const std::size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rbuf_.substr(0, nl);
      rbuf_.erase(0, nl + 1);
      return line;
    }
    char buf[65536];
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    last_error_ = got == 0 ? "connection closed"
                           : std::string("recv: ") + std::strerror(errno);
    return std::nullopt;
  }
}

std::optional<Client::Head> Client::request(const std::string& frame) {
  if (!send_raw(frame)) return std::nullopt;
  const auto line = read_line();
  if (!line) return std::nullopt;
  last_error_ = *line;
  auto [tag, rest] = take_token(*line);
  Head head;
  if (tag == "ok") {
    head.ok = true;
    head.info = rest;
    return head;
  }
  if (tag == "err") {
    auto [code, message] = take_token(rest);
    head.err_code = code;
    head.message = message;
    return head;
  }
  last_error_ = "unexpected response line: " + *line;
  return std::nullopt;
}

bool Client::ping() {
  const auto head = request(ping_request());
  return head && head->ok && head->info == "pong";
}

std::optional<std::map<std::string, std::string>> Client::status() {
  const auto head = request(status_request());
  if (!head || !head->ok) return std::nullopt;
  std::map<std::string, std::string> kv;
  while (true) {
    const auto line = read_line();
    if (!line) return std::nullopt;
    if (*line == "end") return kv;
    const std::size_t eq = line->find('=');
    if (eq != std::string::npos) {
      kv[line->substr(0, eq)] = line->substr(eq + 1);
    }
  }
}

std::optional<obs::Snapshot> Client::metrics() {
  const auto head = request(metrics_request());
  if (!head || !head->ok) return std::nullopt;
  // Reassemble the wire lines into the exact to_text() document (its own
  // `end` line is the terminator) and let the strict parser validate it.
  std::string text;
  while (true) {
    const auto line = read_line();
    if (!line) return std::nullopt;
    text += *line;
    text += '\n';
    if (*line == "end") break;
  }
  auto snap = obs::Snapshot::from_text(text);
  if (!snap) {
    last_error_ = "malformed metrics snapshot";
    return std::nullopt;
  }
  return snap;
}

std::optional<Client::JobStats> Client::streamed_job(
    const std::string& frame,
    const std::function<void(const std::string&)>& on_row) {
  const auto head = request(frame);
  if (!head || !head->ok) return std::nullopt;
  while (true) {
    const auto line = read_line();
    if (!line) return std::nullopt;
    auto [tag, rest] = take_token(*line);
    if (tag == "row") {
      if (on_row) on_row(rest);
      continue;
    }
    if (tag == "event") continue;  // a subscribed connection's side channel
    if (tag == "end") {
      JobStats stats;
      std::string remaining = rest;
      while (!remaining.empty()) {
        auto [tok, rest2] = take_token(remaining);
        remaining = rest2;
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = tok.substr(0, eq);
        const auto value = runner::LineReader::parse_u64(tok.substr(eq + 1));
        if (!value) continue;
        if (key == "scenarios") stats.scenarios = *value;
        else if (key == "ok") stats.ok = *value;
        else if (key == "unresolved") stats.unresolved = *value;
        else if (key == "errors") stats.errors = *value;
        else if (key == "cache_hits") stats.cache_hits = *value;
        else if (key == "executed") stats.executed = *value;
        else if (key == "batched") stats.batched = *value;
      }
      return stats;
    }
    if (tag == "err") {
      last_error_ = *line;
      return std::nullopt;
    }
    last_error_ = "unexpected stream line: " + *line;
    return std::nullopt;
  }
}

std::optional<Client::JobStats> Client::sweep(
    const std::vector<runner::ExperimentSpec>& specs,
    const std::function<void(const std::string&)>& on_row) {
  return streamed_job(sweep_request(specs), on_row);
}

std::optional<Client::JobStats> Client::run(
    const runner::ExperimentSpec& spec,
    const std::function<void(const std::string&)>& on_row) {
  return streamed_job(run_request(spec), on_row);
}

std::optional<Client::Head> Client::evict(
    std::optional<std::uint64_t> max_bytes) {
  return request(evict_request(max_bytes));
}

bool Client::drain() {
  if (!send_raw(drain_request())) return false;
  // The ok is deferred until every admitted job has completed; anything
  // else arriving on this connection meanwhile (rows, events, discarded-
  // job errors) is passed over.
  while (true) {
    const auto line = read_line();
    if (!line) return false;
    if (*line == "ok drained") return true;
    auto [tag, rest] = take_token(*line);
    if (tag == "row" || tag == "event" || tag == "end" || tag == "err") {
      continue;
    }
    last_error_ = "unexpected line while draining: " + *line;
    return false;
  }
}

bool Client::shutdown() {
  const auto head = request(shutdown_request());
  return head && head->ok;
}

}  // namespace asyncrv::service
