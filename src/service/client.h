// Blocking client for the asyncrvd wire protocol (service/protocol.h) —
// the library behind `rv_cli daemon ...` and the service tests. Thin by
// design: it builds frames with the protocol.h builders, writes them to a
// connected Unix socket, and parses response lines back; all experiment
// semantics live on the daemon side.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "runner/spec.h"

namespace asyncrv::service {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to a daemon socket. `retry_ms` > 0 keeps retrying failed
  /// attempts for that many milliseconds (20 ms apart) — the start-up
  /// handshake of `rv_cli daemon start`, which races the daemon's bind.
  bool connect(const std::string& socket_path, int retry_ms = 0);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// The head line of the last response ("ok ..." / "err ...") or the
  /// transport failure, for diagnostics.
  const std::string& last_error() const { return last_error_; }

  /// The first response line of a raw request frame; nullopt on transport
  /// failure. head.ok distinguishes "ok" from "err" lines.
  struct Head {
    bool ok = false;
    std::string info;      ///< after "ok " (head line only)
    std::string err_code;  ///< after "err "
    std::string message;
  };
  std::optional<Head> request(const std::string& frame);

  bool ping();

  /// STATUS as a key -> value map; nullopt on failure.
  std::optional<std::map<std::string, std::string>> status();

  /// METRICS: the daemon's live obs registry snapshot (parsed back from
  /// its asyncrv.metrics.v1 wire form); nullopt on failure.
  std::optional<obs::Snapshot> metrics();

  /// The daemon-side completion counters of a streamed job (the `end` line).
  struct JobStats {
    std::uint64_t scenarios = 0, ok = 0, unresolved = 0, errors = 0;
    std::uint64_t cache_hits = 0, executed = 0, batched = 0;
  };

  /// Submits a sweep and streams its rows: `on_row` (optional) receives
  /// each row's JSONL payload WITHOUT the trailing newline, in spec order —
  /// append '\n' to reconstruct the exact JsonlSink file of the same run.
  /// Returns the end-line stats, or nullopt on rejection/failure (see
  /// last_error()).
  std::optional<JobStats> sweep(
      const std::vector<runner::ExperimentSpec>& specs,
      const std::function<void(const std::string&)>& on_row = nullptr);

  /// Single-spec convenience over the same streamed protocol.
  std::optional<JobStats> run(
      const runner::ExperimentSpec& spec,
      const std::function<void(const std::string&)>& on_row = nullptr);

  /// EVICT: returns "count=N resident_bytes=B" info on success.
  std::optional<Head> evict(std::optional<std::uint64_t> max_bytes);

  /// DRAIN; blocks until the daemon's deferred `ok drained` (i.e. until
  /// every admitted job has completed). Rows/events from this connection's
  /// other activity are skipped while waiting.
  bool drain();

  /// SHUTDOWN (acknowledged immediately; the daemon exits after its
  /// active jobs finish).
  bool shutdown();

  /// Next raw response line (newline stripped); nullopt on EOF/error.
  /// Exposed for tests that assert on exact line sequences.
  std::optional<std::string> read_line();

  /// Writes raw bytes to the socket (a complete frame, normally).
  bool send_raw(const std::string& bytes);

 private:
  std::optional<JobStats> streamed_job(
      const std::string& frame,
      const std::function<void(const std::string&)>& on_row);

  int fd_ = -1;
  std::string rbuf_;
  std::string last_error_;
};

}  // namespace asyncrv::service
