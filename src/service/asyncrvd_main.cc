// asyncrvd — the resident experiment daemon (DESIGN.md §9).
//
//   asyncrvd --socket /tmp/asyncrvd.sock --cache-dir /var/cache/asyncrv \
//            --memory-cap 64m --jobs 2
//
// Serves asyncrv.proto.v1 on a Unix-domain socket until DRAIN/SHUTDOWN or
// SIGTERM/SIGINT, each of which drains gracefully: admitted work finishes,
// results flush, exit code 0.
#include <csignal>
#include <cstdint>
#include <iostream>
#include <string>

#include "obs/trace.h"
#include "runner/encoding.h"
#include "service/server.h"

namespace {

asyncrv::service::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->signal_drain();
}

/// "<n>[k|m|g]" in bytes; nullopt on malformed input.
std::optional<std::uint64_t> parse_bytes(std::string s) {
  std::uint64_t scale = 1;
  if (!s.empty()) {
    const char suffix = s.back();
    if (suffix == 'k' || suffix == 'K') scale = 1ull << 10;
    if (suffix == 'm' || suffix == 'M') scale = 1ull << 20;
    if (suffix == 'g' || suffix == 'G') scale = 1ull << 30;
    if (scale != 1) s.pop_back();
  }
  const auto v = asyncrv::runner::LineReader::parse_u64(s);
  if (!v) return std::nullopt;
  return *v * scale;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --socket <path>       listen here (default /tmp/asyncrvd.sock)\n"
      << "  --cache-dir <dir>     persistent sweep cache (default: none)\n"
      << "  --packed-cache        append outcomes to pack segments with\n"
      << "                        group-commit fsync (DESIGN.md §10)\n"
      << "  --memory-cap <bytes>  LRU-evict interned graphs past this\n"
      << "                        footprint (accepts k/m/g; default: none)\n"
      << "  --jobs <n>            concurrent pipeline jobs (default 2)\n"
      << "  --request-threads <n> pipeline threads per job (0 = hardware)\n"
      << "  --queue <n>           queued jobs beyond active before busy\n"
      << "  --batch-size <n>      lockstep-engine lanes per batch\n"
      << "  --no-batch            run every cell on the scalar engine\n"
      << "  --trace-out <path>    record spans (daemon jobs, pipeline\n"
      << "                        stages) and write Chrome trace_event\n"
      << "                        JSON here on exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  asyncrv::service::ServerOptions options;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto number = [&](std::uint64_t& out) {
      const char* v = value();
      if (v == nullptr) return false;
      const auto parsed = parse_bytes(v);
      if (!parsed) return false;
      out = *parsed;
      return true;
    };
    std::uint64_t n = 0;
    if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      options.socket_path = v;
    } else if (arg == "--cache-dir") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      options.cache_dir = v;
    } else if (arg == "--packed-cache") {
      options.cache.packed = true;
    } else if (arg == "--memory-cap") {
      if (!number(options.memory_cap)) return usage(argv[0]);
    } else if (arg == "--jobs") {
      if (!number(n) || n < 1 || n > 256) return usage(argv[0]);
      options.jobs = static_cast<int>(n);
    } else if (arg == "--request-threads") {
      if (!number(n) || n > 1024) return usage(argv[0]);
      options.threads_per_job = static_cast<int>(n);
    } else if (arg == "--queue") {
      if (!number(n) || n > 100000) return usage(argv[0]);
      options.max_queue = static_cast<int>(n);
    } else if (arg == "--batch-size") {
      if (!number(n) || n < 1) return usage(argv[0]);
      options.batch_size = static_cast<std::size_t>(n);
    } else if (arg == "--no-batch") {
      options.batch = false;
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (v == nullptr || *v == '\0') return usage(argv[0]);
      trace_out = v;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]);
    }
  }

  try {
    if (!trace_out.empty()) asyncrv::obs::Tracer::global().enable();
    asyncrv::service::Server server(options);
    server.bind();
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGPIPE, SIG_IGN);
    std::cout << "asyncrvd listening on " << options.socket_path
              << (options.cache_dir.empty()
                      ? std::string()
                      : " (cache " + options.cache_dir + ")")
              << std::endl;
    const int rc = server.run();
    g_server = nullptr;
    if (!trace_out.empty() &&
        !asyncrv::obs::Tracer::global().write_chrome_json(trace_out)) {
      std::cerr << "asyncrvd: could not write trace to " << trace_out << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "asyncrvd: " << e.what() << "\n";
    return 1;
  }
}
