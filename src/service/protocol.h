// asyncrv.proto.v1 — the wire protocol of the resident experiment service.
//
// A line-oriented text protocol over a local Unix-domain socket, in the
// pvdd tradition: human-debuggable with `nc -U`, trivially scriptable, and
// versioned so daemon and client can never silently disagree. Every
// request begins with the protocol version token; a daemon that does not
// speak the client's version rejects the frame instead of misparsing it.
//
// Request grammar (one frame per request; '\n'-terminated lines, an
// optional trailing '\r' is tolerated for netcat/telnet clients):
//
//   asyncrv.proto.v1 PING
//   asyncrv.proto.v1 STATUS
//   asyncrv.proto.v1 METRICS
//   asyncrv.proto.v1 RUN <escaped-canonical-spec>
//   asyncrv.proto.v1 SWEEP          \n spec <escaped-canonical-spec> ... \n end
//   asyncrv.proto.v1 SEARCH <graph> [objective] [optimizer] [evals] [seed]
//   asyncrv.proto.v1 SUBSCRIBE
//   asyncrv.proto.v1 EVICT [max-bytes]
//   asyncrv.proto.v1 DRAIN
//   asyncrv.proto.v1 SHUTDOWN
//
// <escaped-canonical-spec> is ExperimentSpec::canonical() percent-escaped
// through runner/encoding.h — the SAME canonical form and escaping the
// sweep cache and the spec fingerprints use, so a request submitted over
// the wire fingerprints (and therefore caches) identically to the same
// spec run by a batch binary. The daemon re-canonicalizes after parsing
// and rejects any text that is not an exact canonical form.
//
// Response grammar (line-oriented; every line is written atomically):
//
//   ok <info>                        single-line success
//   err <code> <message>             any failure; the connection stays
//                                    usable (codes: bad-version,
//                                    bad-request, bad-spec, too-large,
//                                    busy, draining, internal)
//   ok status \n key=value ... \n end            (STATUS)
//   ok metrics \n <asyncrv.metrics.v1 lines> \n end    (METRICS) — the
//                                    daemon's live obs::MetricsRegistry
//                                    snapshot, in its to_text() form
//   ok run|sweep|search id=<j> specs=<n>         (job accepted) followed by
//     row <jsonl>                     one per scenario, in spec order; the
//                                     payload is byte-identical to the
//                                     JsonlSink line of the same row
//     end scenarios=<n> ok=.. unresolved=.. errors=.. cache_hits=..
//         executed=.. batched=..      job complete
//   ok subscribed                     (SUBSCRIBE) followed by
//     event job=<j> index=<i> of=<n> status=<s> fingerprint=<hex>
//                                     as outcomes complete (any order), and
//     event job=<j> done              when a job finishes; the stream ends
//                                     only when the connection closes or
//                                     the daemon drains (end drained).
//
// RequestParser is the daemon side: an incremental, per-connection state
// machine that consumes raw bytes and yields complete requests or typed
// errors. It is deliberately paranoid — oversized lines, bad escapes,
// truncated multi-line frames and wrong version tags all surface as clean
// errors after which the connection remains usable (tests/protocol_test.cc
// fuzzes exactly this contract).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runner/spec.h"

namespace asyncrv::service {

inline constexpr char kProtoVersion[] = "asyncrv.proto.v1";

/// Longest accepted request line. Canonical specs are tiny (hundreds of
/// bytes); a megabyte line is a confused or hostile client, not a sweep.
inline constexpr std::size_t kMaxLineBytes = 1 << 20;

/// Most specs accepted in one SWEEP frame.
inline constexpr std::size_t kMaxSweepSpecs = 100'000;

enum class Verb {
  Ping,
  Status,
  Metrics,
  Run,
  Sweep,
  Search,
  Subscribe,
  Evict,
  Drain,
  Shutdown,
};

/// One complete, validated request.
struct Request {
  Verb verb = Verb::Ping;
  /// RUN: exactly 1; SWEEP: 1..kMaxSweepSpecs; SEARCH: the 1 spec built
  /// from the command arguments. Empty for the control verbs.
  std::vector<runner::ExperimentSpec> specs;
  bool has_bytes = false;      ///< EVICT carried an explicit byte cap
  std::uint64_t bytes = 0;     ///< the EVICT cap (0 = evict everything)
};

/// Machine-readable error category of a rejected frame.
enum class ErrCode {
  BadVersion,  ///< first token is not kProtoVersion
  BadRequest,  ///< unknown verb, malformed arguments, truncated frame
  BadSpec,     ///< spec payload is not an exact canonical form
  TooLarge,    ///< line over kMaxLineBytes or sweep over kMaxSweepSpecs
  Busy,        ///< admission queue full (server-side)
  Draining,    ///< daemon no longer admits work (server-side)
  Internal,    ///< server-side failure
};

/// The wire token of an error code ("bad-version", "busy", ...).
const char* err_code_label(ErrCode code);

struct WireError {
  ErrCode code = ErrCode::BadRequest;
  std::string message;  ///< single-line, human-readable
};

/// Incremental request parser — one per connection. feed() raw bytes as
/// they arrive, then drain next() until it returns nullopt (more bytes
/// needed). Every yielded event is either a complete request or an error;
/// after any error the parser has resynchronized (at the next line
/// boundary, or at the end of the offending frame) and keeps parsing.
class RequestParser {
 public:
  struct Event {
    std::optional<Request> request;
    std::optional<WireError> error;  ///< set iff request is not
  };

  void feed(std::string_view bytes);

  /// The next complete request or error, if the buffered bytes contain
  /// one; nullopt when more input is needed.
  std::optional<Event> next();

  /// True while inside a multi-line frame (a SWEEP body) — a connection
  /// that closes in this state sent a truncated request.
  bool mid_request() const { return mode_ == Mode::SweepBody; }

 private:
  enum class Mode {
    Header,     ///< expecting a "asyncrv.proto.v1 VERB ..." line
    SweepBody,  ///< collecting "spec ..." lines until "end"
  };

  std::optional<std::string> take_line();
  Event header_event(const std::string& line);
  Event error_event(ErrCode code, std::string message);

  std::string buffer_;
  bool discarding_line_ = false;  ///< inside an oversized line, drop to '\n'
  Mode mode_ = Mode::Header;
  Request pending_;               ///< the SWEEP being collected
  bool sweep_failed_ = false;     ///< body error seen; reported at frame end
  WireError sweep_error_;
};

// --- client-side frame builders ---------------------------------------------
//
// Exact request frames (every returned string ends with '\n'); the client
// library sends these verbatim and the parser tests round-trip them.

std::string ping_request();
std::string status_request();
std::string metrics_request();
std::string run_request(const runner::ExperimentSpec& spec);
std::string sweep_request(const std::vector<runner::ExperimentSpec>& specs);
std::string search_request(const std::string& graph,
                           const std::string& objective,
                           const std::string& optimizer,
                           std::uint64_t evaluations, std::uint64_t seed);
std::string subscribe_request();
std::string evict_request(std::optional<std::uint64_t> max_bytes);
std::string drain_request();
std::string shutdown_request();

// --- server-side response builders ------------------------------------------

/// "ok <info>\n" (or "ok\n" for empty info).
std::string ok_line(const std::string& info);

/// "err <code> <message>\n"; newlines in the message are flattened so the
/// frame stays line-atomic.
std::string err_line(ErrCode code, const std::string& message);

}  // namespace asyncrv::service
