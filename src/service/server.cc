#include "service/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/pipeline.h"

namespace asyncrv::service {

namespace {

/// The daemon's registry instruments (DESIGN.md §11) — mirrors of the
/// member tallies STATUS reports, so METRICS and STATUS can be
/// cross-checked against each other (the CI obs-smoke job does).
struct DaemonInstruments {
  obs::Counter& jobs_completed =
      obs::metrics().counter("daemon.jobs_completed");
  obs::Counter& rows_streamed = obs::metrics().counter("daemon.rows_streamed");
  obs::Counter& busy_rejections =
      obs::metrics().counter("daemon.busy_rejections");
  obs::Histogram& job_ns = obs::metrics().histogram("daemon.job_ns");

  static DaemonInstruments& get() {
    static DaemonInstruments& in = *new DaemonInstruments();
    return in;
  }
};

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// A nonblocking, close-on-exec pipe (throws on failure).
void make_pipe(int& rd, int& wr) {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw std::runtime_error(std::string("pipe2: ") + std::strerror(errno));
  }
  rd = fds[0];
  wr = fds[1];
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.jobs < 1) options_.jobs = 1;
  if (options_.max_queue < 0) options_.max_queue = 0;
  if (!options_.cache_dir.empty()) {
    cache_.emplace(options_.cache_dir, options_.cache);
  }
}

Server::~Server() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  for (auto& [fd, conn] : connections_) ::close(conn->fd);
  connections_.clear();
  close_if_open(listen_fd_);
  close_if_open(wake_rd_);
  close_if_open(wake_wr_);
  close_if_open(signal_rd_);
  close_if_open(signal_wr_);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

void Server::bind() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  // A stale socket file from a dead daemon would make bind fail with
  // EADDRINUSE even though nobody is listening; a live daemon re-creates
  // its file on the next accept cycle anyway, so unlink unconditionally.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("bind " + options_.socket_path + ": " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw std::runtime_error(std::string("listen: ") + std::strerror(errno));
  }
  make_pipe(wake_rd_, wake_wr_);
  make_pipe(signal_rd_, signal_wr_);
}

void Server::signal_drain() {
  // Async-signal-safe: a single write syscall on a pre-opened pipe.
  const char byte = 'D';
  [[maybe_unused]] const auto n = ::write(signal_wr_, &byte, 1);
}

// --- worker side -------------------------------------------------------------

void Server::post(std::uint64_t conn_gen, std::string bytes, bool job_done) {
  {
    const std::lock_guard<std::mutex> lock(outbox_mutex_);
    outbox_.push_back(Outbound{conn_gen, std::move(bytes), job_done});
  }
  const char byte = 'W';
  [[maybe_unused]] const auto n = ::write(wake_wr_, &byte, 1);
  // A full pipe is fine: the byte already in it wakes the main loop, which
  // drains the whole outbox every time.
}

void Server::worker_main() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_job(job);
  }
}

void Server::run_job(const Job& job) {
  const obs::ObsSpan span("daemon.job", "daemon");
  const auto job_start = std::chrono::steady_clock::now();
  const std::size_t n = job.specs.size();
  const runner::Schema schema = runner::sweep_schema();

  // Outcomes complete in arbitrary order; the wire promises spec order
  // (that is what makes the stream byte-comparable to a JSONL file of the
  // same run). Hold rows back and release the contiguous prefix.
  std::vector<std::string> lines(n);
  std::vector<bool> ready(n, false);
  std::size_t next = 0;

  runner::PipelineOptions popts;
  popts.threads = options_.threads_per_job;
  popts.cache = cache_ ? &*cache_ : nullptr;
  popts.graph_cache = &graphs_;
  popts.batch = options_.batch;
  popts.batch_size = options_.batch_size;
  popts.on_outcome = [&](const runner::ExperimentSpec& spec,
                         const runner::ExperimentOutcome& outcome) {
    // The pipeline serializes this callback; a throw would mark the
    // outcome errored, so everything here is best-effort.
    try {
      const std::size_t i = outcome.index;
      if (i < n && !ready[i]) {
        lines[i] = runner::jsonl_line(schema,
                                      runner::sweep_row(spec, outcome));
        ready[i] = true;
      }
      std::string chunk;
      std::uint64_t flushed = 0;
      while (next < n && ready[next]) {
        chunk += "row " + lines[next];
        lines[next].clear();
        ++next;
        ++flushed;
      }
      if (!chunk.empty()) {
        rows_streamed_.fetch_add(flushed, std::memory_order_relaxed);
        DaemonInstruments::get().rows_streamed.add(flushed);
        post(job.conn_gen, std::move(chunk));
      }
      post(0, "event job=" + std::to_string(job.id) +
                  " index=" + std::to_string(outcome.index) +
                  " of=" + std::to_string(n) + " status=" +
                  outcome.status_label() +
                  " fingerprint=" + spec.fingerprint().hex() + "\n");
    } catch (...) {
    }
  };

  std::string tail;
  try {
    const runner::PipelineReport report =
        runner::ExperimentPipeline(popts).run(job.specs);
    tail = "end scenarios=" + std::to_string(report.totals.scenarios) +
           " ok=" + std::to_string(report.totals.succeeded) +
           " unresolved=" + std::to_string(report.totals.unresolved) +
           " errors=" + std::to_string(report.totals.errored) +
           " cache_hits=" + std::to_string(report.cache_hits) +
           " executed=" + std::to_string(report.executed) +
           " batched=" + std::to_string(report.batched) + "\n";
  } catch (const std::exception& e) {
    tail = err_line(ErrCode::Internal, e.what());
  } catch (...) {
    tail = err_line(ErrCode::Internal, "job failed");
  }
  DaemonInstruments::get().job_ns.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - job_start)
          .count()));
  // The done event goes out BEFORE the job_done accounting entry, so a
  // subscriber watching a drain sees every job's done event ahead of the
  // final `end drained`.
  post(0, "event job=" + std::to_string(job.id) + " done\n");
  post(job.conn_gen, std::move(tail), /*job_done=*/true);
}

// --- main loop ---------------------------------------------------------------

void Server::drain_outbox() {
  std::vector<Outbound> pending;
  {
    const std::lock_guard<std::mutex> lock(outbox_mutex_);
    pending.swap(outbox_);
  }
  for (auto& out : pending) {
    for (auto& [fd, conn] : connections_) {
      if (out.conn_gen == 0 ? conn->subscribed : conn->gen == out.conn_gen) {
        conn->out += out.bytes;
      }
    }
    if (out.job_done) {
      --in_flight_;
      ++jobs_completed_;
      DaemonInstruments::get().jobs_completed.add(1);
      // Group-commit boundary: everything the finished job stored is
      // crash-durable before its `done` frame reaches the client. (The
      // pipeline already flushed at end of run; this is a cheap no-op
      // backstop that pins the contract at the protocol layer.)
      if (cache_) cache_->flush();
      if (options_.memory_cap > 0) graphs_.evict_until(options_.memory_cap);
      if (draining_ && in_flight_ == 0) finish_drain();
    }
  }
}

void Server::finish_drain() {
  for (auto& [fd, conn] : connections_) {
    if (conn->drain_waiter) {
      conn->out += ok_line("drained");
      conn->drain_waiter = false;
    }
    if (conn->subscribed) conn->out += "end drained\n";
  }
  stopping_ = true;
}

std::string Server::status_response() const {
  const runner::GraphCache::Stats g = graphs_.stats();
  std::string r = ok_line("status");
  const auto kv = [&r](const std::string& k, const std::string& v) {
    r += k + "=" + v + "\n";
  };
  const auto kvu = [&kv](const std::string& k, std::uint64_t v) {
    kv(k, std::to_string(v));
  };
  kv("server", "asyncrvd");
  kv("proto", kProtoVersion);
  kvu("jobs", static_cast<std::uint64_t>(options_.jobs));
  kvu("threads_per_job", static_cast<std::uint64_t>(options_.threads_per_job));
  kvu("queue_max", static_cast<std::uint64_t>(options_.max_queue));
  kvu("in_flight", static_cast<std::uint64_t>(in_flight_));
  kv("draining", draining_ ? "1" : "0");
  kv("batch", options_.batch ? "1" : "0");
  kvu("memory_cap", options_.memory_cap);
  kv("cache_dir", cache_ ? cache_->dir() : "-");
  kvu("graph_lookups", g.lookups);
  kvu("graph_hits", g.hits);
  kvu("graph_builds", g.builds);
  kvu("graph_evictions", g.evictions);
  kvu("graph_resident", g.resident_graphs);
  kvu("graph_resident_bytes", g.resident_bytes);
  kvu("graph_resident_bytes_hwm", g.resident_bytes_hwm);
  kvu("jobs_completed", jobs_completed_);
  kvu("rows_streamed", rows_streamed_.load(std::memory_order_relaxed));
  kvu("busy_rejections", busy_rejections_);
  r += "end\n";
  return r;
}

std::string Server::metrics_response() const {
  // The snapshot's text form supplies its own `end` trailer, so the frame
  // is exactly: ok head, version line, instrument lines, end.
  return ok_line("metrics") + obs::metrics().snapshot().to_text();
}

void Server::admit_job(Connection& conn, const char* kind,
                       std::vector<runner::ExperimentSpec> specs) {
  if (draining_) {
    conn.out += err_line(ErrCode::Draining, "daemon is draining");
    return;
  }
  if (in_flight_ >= options_.jobs + options_.max_queue) {
    ++busy_rejections_;
    DaemonInstruments::get().busy_rejections.add(1);
    conn.out += err_line(ErrCode::Busy, "admission queue full");
    return;
  }
  Job job;
  job.id = next_job_id_++;
  job.conn_gen = conn.gen;
  job.kind = kind;
  job.specs = std::move(specs);
  conn.out += ok_line(std::string(kind) + " id=" + std::to_string(job.id) +
                      " specs=" + std::to_string(job.specs.size()));
  ++in_flight_;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
}

void Server::handle_request(Connection& conn, const Request& request) {
  switch (request.verb) {
    case Verb::Ping:
      conn.out += ok_line("pong");
      return;
    case Verb::Status:
      conn.out += status_response();
      return;
    case Verb::Metrics:
      conn.out += metrics_response();
      return;
    case Verb::Subscribe:
      conn.subscribed = true;
      conn.out += ok_line("subscribed");
      return;
    case Verb::Evict: {
      const std::uint64_t cap = request.has_bytes ? request.bytes : 0;
      const std::uint64_t count = graphs_.evict_until(cap);
      conn.out += ok_line(
          "evicted count=" + std::to_string(count) + " resident_bytes=" +
          std::to_string(graphs_.stats().resident_bytes));
      return;
    }
    case Verb::Run:
      admit_job(conn, "run", request.specs);
      return;
    case Verb::Search:
      admit_job(conn, "search", request.specs);
      return;
    case Verb::Sweep:
      admit_job(conn, "sweep", request.specs);
      return;
    case Verb::Drain:
      draining_ = true;
      conn.drain_waiter = true;
      if (in_flight_ == 0) finish_drain();
      return;
    case Verb::Shutdown: {
      // Discard queued-but-unstarted jobs (their owners are told), keep
      // active ones (pipelines are not cancellable mid-scenario), then
      // drain the remainder.
      std::deque<Job> discarded;
      {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        discarded.swap(queue_);
      }
      for (const Job& job : discarded) {
        --in_flight_;
        for (auto& [fd, other] : connections_) {
          if (other->gen == job.conn_gen) {
            other->out += err_line(ErrCode::Draining,
                                   "job " + std::to_string(job.id) +
                                       " discarded by shutdown");
          }
        }
      }
      conn.out += ok_line("shutting-down");
      draining_ = true;
      if (in_flight_ == 0) finish_drain();
      return;
    }
  }
}

void Server::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient failure: poll again
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->gen = next_gen_++;
    connections_[fd] = std::move(conn);
  }
}

void Server::read_ready(Connection& conn) {
  char buf[65536];
  bool eof = false;
  while (true) {
    const ssize_t got = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (got > 0) {
      conn.parser.feed(std::string_view(buf, static_cast<std::size_t>(got)));
      continue;
    }
    if (got == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;
    break;
  }
  while (auto event = conn.parser.next()) {
    if (event->error) {
      conn.out += err_line(event->error->code, event->error->message);
    } else if (event->request) {
      handle_request(conn, *event->request);
    }
  }
  if (eof) close_connection(conn);
}

void Server::write_ready(Connection& conn) {
  while (!conn.out.empty()) {
    const ssize_t sent =
        ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (sent > 0) {
      conn.out.erase(0, static_cast<std::size_t>(sent));
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (sent < 0 && errno == EINTR) continue;
    close_connection(conn);
    return;
  }
}

void Server::close_connection(Connection& conn) {
  const int fd = conn.fd;
  ::close(fd);
  connections_.erase(fd);  // destroys conn — no member access past here
}

int Server::run() {
  workers_.reserve(static_cast<std::size_t>(options_.jobs));
  for (int i = 0; i < options_.jobs; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }

  std::vector<pollfd> fds;
  int flush_spins = 0;
  while (true) {
    drain_outbox();

    if (stopping_) {
      bool pending = false;
      for (auto& [fd, conn] : connections_) {
        if (!conn->out.empty()) pending = true;
      }
      // Everything flushed (or the grace period is over): done.
      if (!pending || ++flush_spins > 100) break;
    }

    fds.clear();
    fds.push_back({listen_fd_, stopping_ ? short{0} : short{POLLIN}, 0});
    fds.push_back({wake_rd_, POLLIN, 0});
    fds.push_back({signal_rd_, POLLIN, 0});
    for (auto& [fd, conn] : connections_) {
      short events = stopping_ ? short{0} : short{POLLIN};
      if (!conn->out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }

    const int rc = ::poll(fds.data(), fds.size(), stopping_ ? 50 : -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[0].revents & POLLIN) accept_ready();
    if (fds[1].revents & POLLIN) {
      char sink[256];
      while (::read(wake_rd_, sink, sizeof(sink)) > 0) {
      }
    }
    if (fds[2].revents & POLLIN) {
      char sink[256];
      while (::read(signal_rd_, sink, sizeof(sink)) > 0) {
      }
      draining_ = true;
      if (in_flight_ == 0) finish_drain();
    }

    drain_outbox();  // route worker output before socket I/O

    for (std::size_t i = 3; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this round
      Connection& conn = *it->second;
      if (revents & (POLLHUP | POLLERR)) {
        // Flush what we can (the peer may have shutdown(SHUT_WR) only),
        // then read whatever is still buffered; read_ready closes on EOF.
        if (revents & POLLOUT) write_ready(conn);
        if (connections_.count(fd) == 0) continue;
        read_ready(conn);
        continue;
      }
      if (revents & POLLOUT) write_ready(conn);
      if (connections_.count(fd) == 0) continue;
      if (revents & POLLIN) read_ready(conn);
    }
  }

  // Epilogue: stop the workers (they finish their current job first).
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  for (auto& [fd, conn] : connections_) ::close(conn->fd);
  connections_.clear();
  close_if_open(listen_fd_);
  ::unlink(options_.socket_path.c_str());
  return 0;
}

}  // namespace asyncrv::service
