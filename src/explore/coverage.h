// Integrality verification for exploration sequences.
//
// A trajectory R(k, v) is *integral* (paper, Section 2) if the
// corresponding route covers all edges of the graph. The substituted
// pseudorandom UXS is only admissible if R(k, v) is integral whenever
// k >= n; these helpers let tests and benches machine-check that property
// on every instance they use.
#pragma once

#include <cstdint>

#include "explore/uxs.h"
#include "graph/graph.h"

namespace asyncrv {

struct CoverageReport {
  bool all_edges = false;
  bool all_nodes = false;
  std::uint64_t steps = 0;             ///< traversals executed (= P(k))
  std::uint64_t first_full_cover = 0;  ///< step count when the last edge was first covered (0 if never)
};

/// Runs R(k, v) on g and reports edge/node coverage.
CoverageReport run_coverage(const Graph& g, const Uxs& uxs, std::uint64_t k, Node start);

/// True iff R(k, v) is integral on g for every start node v.
bool integral_from_all_starts(const Graph& g, const Uxs& uxs, std::uint64_t k);

}  // namespace asyncrv
