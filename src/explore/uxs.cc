#include "explore/uxs.h"

// Uxs is header-only; see uxs.h.
