// Universal exploration sequences (UXS) — the substrate behind the
// trajectory R(k, v) of Section 2.
//
// A UXS is a fixed sequence (x_1, x_2, ...) of non-negative integers.
// An agent that entered its current node of degree d by port p exits by
// port (p + x_i) mod d; at the start node the entry port is taken to be 0.
// R(k, v) follows the first P(k) terms from node v. Reingold's theorem
// guarantees a polynomial-length UXS exploring every graph of size <= k;
// we substitute a fixed-seed pseudorandom sequence (see DESIGN.md §2.1)
// and *verify* integrality with explore/coverage.h over the graph catalog.
#pragma once

#include <cstdint>

#include "explore/ppoly.h"
#include "util/prng.h"

namespace asyncrv {

/// The exploration sequence provider. Value-semantic and cheap to copy;
/// term i is derived from (seed, i) without materializing the sequence.
class Uxs {
 public:
  explicit Uxs(PPoly p = PPoly::standard(), std::uint64_t seed = 0x5eed0001)
      : p_(p), seed_(seed) {}

  const PPoly& p() const { return p_; }
  std::uint64_t seed() const { return seed_; }

  /// Number of edge traversals of R(k, v).
  std::uint64_t length(std::uint64_t k) const { return p_(k); }

  /// Term x_i (i counts from 0) of the sequence.
  std::uint64_t term(std::uint64_t i) const { return splitmix64(seed_ ^ (i * 0x9e3779b97f4a7c15ULL + 0x1234)); }

  /// Port to exit by, given the entry port and the degree of the node.
  /// The paper's rule: q = (p + x_i) mod d.
  int exit_port(std::uint64_t i, int entry_port, int degree) const {
    return static_cast<int>((static_cast<std::uint64_t>(entry_port) + term(i)) %
                            static_cast<std::uint64_t>(degree));
  }

 private:
  PPoly p_;
  std::uint64_t seed_;
};

}  // namespace asyncrv
