#include "explore/uxs_search.h"

#include <algorithm>
#include <numeric>
#include <functional>
#include <sstream>
#include <utility>

namespace asyncrv {

namespace {

/// All connected edge subsets of K_n, as edge lists.
std::vector<std::vector<std::pair<Node, Node>>> connected_edge_sets(Node n) {
  std::vector<std::pair<Node, Node>> all_edges;
  for (Node a = 0; a < n; ++a)
    for (Node b = a + 1; b < n; ++b) all_edges.emplace_back(a, b);
  const std::size_t m = all_edges.size();
  std::vector<std::vector<std::pair<Node, Node>>> out;
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    std::vector<std::pair<Node, Node>> edges;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (1u << i)) edges.push_back(all_edges[i]);
    }
    if (edges.size() + 1 < n) continue;  // too few edges to connect
    std::vector<Node> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](Node x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    std::size_t components = n;
    for (auto [a, b] : edges) {
      const Node ra = find(a), rb = find(b);
      if (ra != rb) {
        parent[ra] = rb;
        --components;
      }
    }
    if (components == 1) out.push_back(std::move(edges));
  }
  return out;
}

/// Appends the canonical graph for `edges` under EVERY combination of
/// per-node port permutations (the full group of port numberings).
void enumerate_port_assignments(const std::vector<std::pair<Node, Node>>& edges,
                                Node n, std::vector<Graph>* out) {
  const Graph base = Graph::from_edges(n, edges);
  std::vector<std::vector<Port>> current(n);
  for (Node v = 0; v < n; ++v) {
    current[v].resize(static_cast<std::size_t>(base.degree(v)));
    std::iota(current[v].begin(), current[v].end(), 0);
  }
  // Odometer over per-node permutations (lexicographic at each node).
  std::function<void(Node)> rec = [&](Node v) {
    if (v == n) {
      out->push_back(base.remap_ports(current));
      return;
    }
    std::vector<Port>& p = current[v];
    std::sort(p.begin(), p.end());
    do {
      rec(v + 1);
    } while (std::next_permutation(p.begin(), p.end()));
  };
  rec(0);
}

}  // namespace

std::vector<Graph> enumerate_port_numbered_graphs(Node n) {
  ASYNCRV_CHECK_MSG(n >= 2 && n <= 5, "exhaustive enumeration is for tiny n");
  std::vector<Graph> out;
  for (const auto& edges : connected_edge_sets(n)) {
    enumerate_port_assignments(edges, n, &out);
  }
  return out;
}

bool sequence_explores(const Graph& g, const Uxs& uxs, std::uint64_t len) {
  for (Node start = 0; start < g.size(); ++start) {
    std::vector<char> seen(g.edge_count(), 0);
    std::size_t left = g.edge_count();
    Node cur = start;
    int entry = 0;
    for (std::uint64_t i = 0; i < len && left > 0; ++i) {
      const int port = uxs.exit_port(i, entry, g.degree(cur));
      const std::uint32_t eid = g.edge_id(cur, port);
      if (!seen[eid]) {
        seen[eid] = 1;
        --left;
      }
      const Graph::Half h = g.step(cur, port);
      cur = h.to;
      entry = h.port_at_to;
    }
    if (left > 0) return false;
  }
  return true;
}

UniversalityCertificate certify_uxs(const Uxs& uxs, Node max_n) {
  UniversalityCertificate cert;
  cert.universal = true;
  for (Node n = 2; n <= max_n; ++n) {
    for (const Graph& g : enumerate_port_numbered_graphs(n)) {
      ++cert.graphs_checked;
      cert.starts_checked += g.size();
      if (!sequence_explores(g, uxs, uxs.length(max_n))) {
        cert.universal = false;
        std::ostringstream os;
        os << "failure on an instance with " << g.summary();
        cert.first_failure = os.str();
        return cert;
      }
    }
  }
  return cert;
}

}  // namespace asyncrv
