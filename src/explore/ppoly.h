// The length polynomial P of the exploration procedure.
//
// In the paper, P(n) is the (polynomial) number of edge traversals of
// Reingold's procedure R(n, v), which traverses all edges of any graph of
// size at most n from any start node. The exact polynomial is never used —
// only that it is fixed, non-decreasing, and polynomial. Here P is an
// explicit configurable polynomial; tests verify the resulting sequence
// really is integral (covers every edge) on the whole graph catalog at
// every size a suite uses.
#pragma once

#include <cstdint>

#include "util/u128.h"

namespace asyncrv {

/// P(k) = max(floor, c3 k^3 + c2 k^2 + c0). Three profiles ship:
///  - standard: ample margin; used by the rendezvous harnesses.
///  - compact: shorter sequences for heavier sweeps.
///  - tiny: quadratic; used by the multi-agent (ESST / SGL) suites whose
///    per-run costs grow like P(2t)·P(t). Coverage at the sizes those
///    suites use is still machine-verified by tests.
struct PPoly {
  std::uint64_t c3 = 2;
  std::uint64_t c2 = 0;
  std::uint64_t c0 = 8;
  std::uint64_t floor = 8;

  static PPoly standard() { return PPoly{2, 0, 8, 8}; }
  static PPoly compact() { return PPoly{1, 0, 4, 4}; }
  static PPoly tiny() { return PPoly{0, 3, 12, 12}; }

  std::uint64_t operator()(std::uint64_t k) const {
    const std::uint64_t v = c3 * k * k * k + c2 * k * k + c0;
    return v < floor ? floor : v;
  }

  /// Saturating evaluation for the worst-case length calculus, where k can
  /// itself be large.
  SatU128 sat(SatU128 k) const {
    return SatU128{c3} * k * k * k + SatU128{c2} * k * k + SatU128{c0};
  }

  friend bool operator==(const PPoly& a, const PPoly& b) {
    return a.c3 == b.c3 && a.c2 == b.c2 && a.c0 == b.c0 && a.floor == b.floor;
  }
};

}  // namespace asyncrv
