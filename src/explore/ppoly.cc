#include "explore/ppoly.h"

// PPoly is header-only; this translation unit exists so the build system
// has a home for future non-inline additions.
