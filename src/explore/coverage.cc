#include "explore/coverage.h"

#include <vector>

namespace asyncrv {

CoverageReport run_coverage(const Graph& g, const Uxs& uxs, std::uint64_t k, Node start) {
  CoverageReport rep;
  std::vector<char> edge_seen(g.edge_count(), 0);
  std::vector<char> node_seen(g.size(), 0);
  std::size_t edges_left = g.edge_count();
  std::size_t nodes_left = g.size();

  Node cur = start;
  int entry = 0;
  node_seen[cur] = 1;
  --nodes_left;

  const std::uint64_t len = uxs.length(k);
  for (std::uint64_t i = 0; i < len; ++i) {
    const int port = uxs.exit_port(i, entry, g.degree(cur));
    const std::uint32_t eid = g.edge_id(cur, port);
    if (!edge_seen[eid]) {
      edge_seen[eid] = 1;
      if (--edges_left == 0) rep.first_full_cover = i + 1;
    }
    const Graph::Half h = g.step(cur, port);
    cur = h.to;
    entry = h.port_at_to;
    if (!node_seen[cur]) {
      node_seen[cur] = 1;
      --nodes_left;
    }
  }
  rep.steps = len;
  rep.all_edges = (edges_left == 0);
  rep.all_nodes = (nodes_left == 0);
  return rep;
}

bool integral_from_all_starts(const Graph& g, const Uxs& uxs, std::uint64_t k) {
  for (Node v = 0; v < g.size(); ++v) {
    if (!run_coverage(g, uxs, k, v).all_edges) return false;
  }
  return true;
}

}  // namespace asyncrv
