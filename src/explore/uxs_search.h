// Exhaustively verified exploration sequences for tiny graphs.
//
// The substituted pseudorandom UXS (uxs.h) is validated empirically on the
// graph catalog; for *tiny* sizes we can do better and certify true
// universality: enumerate EVERY connected simple port-numbered graph with
// at most `max_n` nodes (all topologies x all port numberings at every
// node) and check that a candidate increment sequence explores all edges
// from every start node. This turns the DESIGN.md §2.1 substitution into a
// proof for n <= max_n (the enumeration is exact, not sampled) and into a
// strong empirical statement beyond.
//
// Complexity makes max_n = 4 the practical certification frontier
// (6 connected topologies, up to 3!^4 port numberings each); max_n = 5 is
// reachable with patience but not wired into the default tests.
#pragma once

#include <cstdint>
#include <vector>

#include "explore/uxs.h"
#include "graph/graph.h"

namespace asyncrv {

/// Every connected simple port-numbered graph on exactly n nodes:
/// all edge subsets of K_n that are connected, each in every port
/// numbering. n <= 4 is instantaneous; n == 5 takes minutes.
std::vector<Graph> enumerate_port_numbered_graphs(Node n);

/// Does the increment prefix x_0..x_{len-1} of `uxs` explore all edges of
/// g from every start node?
bool sequence_explores(const Graph& g, const Uxs& uxs, std::uint64_t len);

struct UniversalityCertificate {
  bool universal = false;
  std::uint64_t graphs_checked = 0;
  std::uint64_t starts_checked = 0;
  std::string first_failure;  ///< summary of the first failing instance
};

/// Certifies that the P(k)-step prefix of `uxs` is a true universal
/// exploration sequence for ALL port-numbered graphs of size <= max_n
/// (taking k = max_n). Exhaustive, not sampled.
UniversalityCertificate certify_uxs(const Uxs& uxs, Node max_n);

}  // namespace asyncrv
