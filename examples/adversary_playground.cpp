// Scenario: how much can the adversary hurt?
//
// The asynchronous adversary controls speeds, stalls, bursts and even
// back-and-forth motion inside edges. This example pits the same pair of
// agents against every strategy in the battery, on a graph that is hard to
// cover (a lollipop), as one ExperimentPipeline batch, and prints
// per-strategy costs (through the Console sink) plus the faithful
// worst-case bound Π(n, m) of Theorem 3.1 for contrast.
#include <cstdint>
#include <iomanip>
#include <iostream>

#include "runner/pipeline.h"
#include "runner/registry.h"
#include "rv/label.h"
#include "rv/pi_bound.h"
#include "traj/lengths_approx.h"
#include "traj/traj.h"

int main() {
  using namespace asyncrv;
  const std::string graph_id = "lollipop:7:4";
  const std::uint64_t label_a = 9, label_b = 14;
  const auto m = static_cast<std::uint64_t>(
      std::min(label_length(label_a), label_length(label_b)));

  std::vector<runner::ExperimentSpec> specs;
  for (const std::string& adv : adversary_battery_names()) {
    runner::RendezvousSpec rv;
    rv.graph = graph_id;
    rv.adversary = adv;
    rv.seed = runner::battery_seed(adv, 99);
    rv.labels = {label_a, label_b};
    rv.starts = {0, 6};
    rv.budget = 50'000'000;
    specs.push_back({.name = "", .scenario = std::move(rv)});
  }
  const runner::PipelineReport report =
      runner::ExperimentPipeline().run(std::move(specs));

  const Graph g = runner::make_graph(graph_id);
  std::cout << "Adversary ablation on a lollipop graph (" << g.summary()
            << "), labels (" << label_a << ", " << label_b << ")\n\n";

  // The per-strategy slice of the sweep table, through the Console sink.
  runner::ConsoleSink console;
  const auto [schema, rows] = runner::select(
      report.schema, report.rows,
      {"adversary", "status", "cost", "traversals_a", "traversals_b"});
  runner::emit(console, schema, rows);

  std::uint64_t worst = 0;
  for (const runner::ExperimentOutcome& out : report.outcomes) {
    if (out.ok() && out.cost > worst) worst = out.cost;
  }
  const TrajKit kit(PPoly::tiny(), 0x5eed0001);
  const CalibratedPi pi_hat;
  std::cout << "\nworst measured cost        : " << worst << "\n";
  std::cout << "calibrated bound Pi^(n,m)  : " << pi_hat(g.size(), m) << "\n";
  std::cout << "faithful bound Pi(n,m)     : 10^"
            << std::fixed << std::setprecision(1)
            << pi_bound_log10_approx(kit.uxs().p(), g.size(), m)
            << " edge traversals (Theorem 3.1, tiny profile)\n";
  std::cout << "\nThe gap between measured costs and the faithful bound is\n"
               "why the executable harness uses the calibrated bound — see\n"
               "DESIGN.md §2.\n";
  return report.totals.errored == 0 ? 0 : 1;
}
