// Scenario: how much can the adversary hurt?
//
// The asynchronous adversary controls speeds, stalls, bursts and even
// back-and-forth motion inside edges. This example pits the same pair of
// agents against every strategy in the battery, on a graph that is hard to
// cover (a lollipop), and prints per-strategy costs plus the faithful
// worst-case bound Π(n, m) of Theorem 3.1 for contrast.
#include <cstdint>
#include <iomanip>
#include <iostream>

#include "graph/builders.h"
#include "rv/label.h"
#include "rv/pi_bound.h"
#include "traj/lengths_approx.h"
#include "rv/rv_route.h"
#include "sim/adversary.h"
#include "sim/two_agent.h"

int main() {
  using namespace asyncrv;
  const Graph g = make_lollipop(7, 4);
  const TrajKit kit(PPoly::tiny(), 0x5eed0001);
  const std::uint64_t label_a = 9, label_b = 14;
  const auto m = static_cast<std::uint64_t>(
      std::min(label_length(label_a), label_length(label_b)));

  std::cout << "Adversary ablation on a lollipop graph (" << g.summary()
            << "), labels (" << label_a << ", " << label_b << ")\n\n";

  std::cout << std::setw(14) << "adversary" << std::setw(12) << "cost"
            << std::setw(10) << "agent a" << std::setw(10) << "agent b"
            << "\n";
  auto names = adversary_battery_names();
  std::size_t ai = 0;
  std::uint64_t worst = 0;
  for (auto& adv : adversary_battery(/*seed=*/99)) {
    auto route_a = make_walker_route(
        g, 0, [&](Walker& w) { return rv_route(w, kit, label_a, nullptr); });
    auto route_b = make_walker_route(
        g, 6, [&](Walker& w) { return rv_route(w, kit, label_b, nullptr); });
    TwoAgentSim sim(g, route_a, 0, route_b, 6);
    const RendezvousResult res = sim.run(*adv, 50'000'000);
    std::cout << std::setw(14) << names[ai] << std::setw(12)
              << (res.met ? std::to_string(res.cost()) : "no-meet")
              << std::setw(10) << res.traversals_a << std::setw(10)
              << res.traversals_b << "\n";
    if (res.met && res.cost() > worst) worst = res.cost();
    ++ai;
  }

  const CalibratedPi pi_hat;
  std::cout << "\nworst measured cost        : " << worst << "\n";
  std::cout << "calibrated bound Pi^(n,m)  : " << pi_hat(g.size(), m) << "\n";
  std::cout << "faithful bound Pi(n,m)     : 10^"
            << std::fixed << std::setprecision(1)
            << pi_bound_log10_approx(kit.uxs().p(), g.size(), m)
            << " edge traversals (Theorem 3.1, tiny profile)\n";
  std::cout << "\nThe gap between measured costs and the faithful bound is\n"
               "why the executable harness uses the calibrated bound — see\n"
               "DESIGN.md §2.\n";
  return 0;
}
