// A command-line driver for the rendezvous simulator — the tool a
// downstream user reaches for first.
//
// Usage:
//   rv_cli [family] [n] [label_a] [label_b] [adversary] [seed]
//          [--csv <path>] [--jsonl <path>] [--cache-dir <dir>]
//   rv_cli search <graph-id> [objective] [optimizer] [evals] [seed]
//          [--csv <path>] [--jsonl <path>] [--cache-dir <dir>]
//
//   family     ring | path | complete | star | grid | torus | tree |
//              lollipop | petersen | hypercube          (default ring)
//   n          graph size parameter                      (default 6)
//   label_a/b  positive integer labels                   (default 5, 12)
//   adversary  fair | random | stall | burst | oscillating | avoider |
//              phase | skew                              (default random)
//   seed       adversary seed                            (default 42)
//
//   --csv/--jsonl write the typed result row to machine-readable sinks;
//   --cache-dir makes re-runs of the same instance load the recorded
//   outcome (including the schedule) from the persistent sweep cache.
//
// The instance is assembled into a typed RendezvousSpec (with schedule
// recording on) and executed by the experiment pipeline; the tool prints
// the instance (including its DOT rendering) and the traced schedule
// statistics.
//
// The `search` mode runs an optimizing worst-case adversary instead
// (src/search/, DESIGN.md §6): <graph-id> is any registry id ("petersen",
// "ring:12", "rreg:10,3@7"), objective is rv-cost | esst-phase |
// pi-margin (default rv-cost), optimizer is random | hill | anneal
// (default hill). Agents start at node 0 and the BFS-farthest node from
// it (adjacent starts would make every schedule meet instantly). The
// tool prints the worst schedule found (its genome, replayable), re-runs
// it to demonstrate the bit-identical replay, and reports any soundness
// violations loudly. Searches cache like any other scenario: re-running
// with --cache-dir is instant.
#include <cstdint>
#include <iostream>
#include <string>

#include "graph/io.h"
#include "runner/cli.h"
#include "runner/registry.h"
#include "search/objective.h"

namespace {

using namespace asyncrv;

std::string family_graph_id(const std::string& family, Node n) {
  if (family == "grid" || family == "torus") {
    return family + ":" + std::to_string(n) + "x" + std::to_string(n);
  }
  if (family == "tree") return "tree:" + std::to_string(n) + ":7";
  if (family == "lollipop") {
    return "lollipop:" + std::to_string(n) + ":" + std::to_string(n / 2);
  }
  if (family == "petersen") return "petersen";
  return family + ":" + std::to_string(n);
}

/// The node farthest from node 0 (smallest id among ties, by BFS): the
/// least degenerate default placement — adjacent starts (a ring's 0 and
/// n-1) cap every schedule at a near-instant meeting and make the search
/// pointless.
Node farthest_from_zero(const Graph& g) {
  std::vector<int> dist(g.size(), -1);
  std::vector<Node> queue = {0};
  dist[0] = 0;
  Node best = g.size() - 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Node v = queue[head];
    if (dist[v] > dist[best] || (dist[v] == dist[best] && v < best)) best = v;
    for (Port p = 0; p < g.degree(v); ++p) {
      const Node to = g.step(v, p).to;
      if (dist[to] < 0) {
        dist[to] = dist[v] + 1;
        queue.push_back(to);
      }
    }
  }
  return best;
}

/// The `search` mode: optimize an adversarial schedule, print and replay
/// the winner. Returns the process exit code.
int run_search_mode(runner::PipelineCli& cli,
                    const std::vector<std::string>& args) {
  if (args.size() > 6) {
    std::cerr << "usage: rv_cli search <graph-id> [objective] [optimizer] "
                 "[evals] [seed] "
              << runner::PipelineCli::flags_help() << "\n";
    return 1;
  }
  runner::SearchSpec se;
  se.graph = args.size() > 1 ? args[1] : "petersen";
  se.objective = args.size() > 2 ? args[2] : "rv-cost";
  se.optimizer = args.size() > 3 ? args[3] : "hill";
  if (args.size() > 4) {
    // Signed parse + range check: stoull would wrap "-1" into 1.8e19
    // evaluations and hang the process.
    const long long evals = std::stoll(args[4]);
    if (evals < 1 || evals > 100'000'000) {
      std::cerr << "error: evals must be in [1, 100000000], got " << args[4]
                << "\n";
      return 1;
    }
    se.evaluations = static_cast<std::uint64_t>(evals);
  } else {
    se.evaluations = 240;
  }
  if (args.size() > 5) {
    if (args[5].empty() ||
        args[5].find_first_not_of("0123456789") != std::string::npos) {
      std::cerr << "error: seed must be a non-negative integer, got "
                << args[5] << "\n";
      return 1;
    }
    se.seed = std::stoull(args[5]);
  }
  se.labels = {5, 12};
  se.budget = se.objective == "esst-phase" ? 25'000 : 40'000;

  const Graph g = runner::make_graph(se.graph);
  se.starts = {0, farthest_from_zero(g)};
  const runner::ExperimentSpec spec{.name = "", .scenario = se};

  std::cout << "searching: " << se.graph << " (" << g.summary() << "), "
            << se.objective << " via " << se.optimizer << ", "
            << se.evaluations << " evaluations (seed " << se.seed << ")\n";
  std::cout << "fingerprint: " << spec.fingerprint().hex() << "\n";

  const runner::PipelineReport report =
      runner::ExperimentPipeline(cli.options()).run({spec});
  const runner::ExperimentOutcome& out = report.outcomes.front();
  if (out.status == runner::RunStatus::Error) {
    std::cerr << "error: " << out.error << "\n";
    return 1;
  }
  const runner::SearchOutcome& so = *out.search();
  if (cli.has_cache() && report.cache_hits > 0) {
    std::cout << "(outcome served from cache: " << cli.cache()->entry_path(spec)
              << ")\n";
  }
  std::cout << "best score " << so.best_score << " (cost " << so.best_cost
            << ", met " << (so.best_met ? "yes" : "no");
  if (se.objective == "esst-phase") std::cout << ", phase " << so.best_phase;
  std::cout << ") after " << so.evaluations << " evaluations, "
            << so.improvements << " improvements\n";
  if (so.bound > 0) std::cout << "soundness bound: " << so.bound << "\n";
  if (se.objective == "pi-margin" && se.budget <= so.bound / 2) {
    std::cout << "(budget " << se.budget
              << " caps evaluations below pi_hat/2 — measuring slack; "
                 "violations are out of reach at this budget)\n";
  }
  if (so.violations > 0) {
    std::cout << "*** " << so.violations
              << " SOUNDNESS VIOLATION(S) FOUND — see DESIGN.md §6\n";
  }
  std::cout << "worst schedule genome: " << so.best_genome << "\n";

  // Replay the persisted genome from scratch: same spec + same genome =
  // the same run, bit for bit.
  const auto genome = search::ScheduleGenome::from_text(so.best_genome);
  if (!genome) {
    std::cerr << "error: winning genome failed to parse: " << so.best_genome
              << "\n";
    return 1;
  }
  const TrajKit kit(runner::make_ppoly(se.ppoly), se.kit_seed);
  const search::Evaluation replay =
      search::evaluate(runner::search_problem(se, g, kit), *genome, nullptr);
  std::cout << "replay: score " << replay.score << ", cost " << replay.cost
            << (replay.score == so.best_score && replay.cost == so.best_cost
                    ? " — bit-identical to the search's winner\n"
                    : " — MISMATCH (engine determinism bug!)\n");
  return replay.score == so.best_score ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asyncrv;
  try {
    runner::PipelineCli cli;
    const std::vector<std::string> args = cli.parse(argc, argv);
    if (!args.empty() && args[0] == "search") return run_search_mode(cli, args);
    if (args.size() > 6) {
      std::cerr << "usage: rv_cli [family] [n] [label_a] [label_b] "
                   "[adversary] [seed] "
                << runner::PipelineCli::flags_help() << "\n";
      return 1;
    }
    const std::string family = !args.empty() ? args[0] : "ring";
    // Signed parse + range check: stoul would wrap "-3" into a
    // 4-billion-node graph request.
    const long n_arg = args.size() > 1 ? std::stol(args[1]) : 6;
    if (n_arg < 2 || n_arg > 100000) {
      std::cerr << "error: graph size must be in [2, 100000], got " << n_arg
                << "\n";
      return 1;
    }
    const Node n = static_cast<Node>(n_arg);
    const std::uint64_t la = args.size() > 2 ? std::stoull(args[2]) : 5;
    const std::uint64_t lb = args.size() > 3 ? std::stoull(args[3]) : 12;
    const std::string adv_name = args.size() > 4 ? args[4] : "random";
    const std::uint64_t seed = args.size() > 5 ? std::stoull(args[5]) : 42;

    runner::RendezvousSpec rv;
    rv.graph = family_graph_id(family, n);
    rv.adversary = adv_name;
    rv.seed = seed;
    rv.labels = {la, lb};
    rv.budget = 50'000'000;
    rv.record_schedule = true;

    const Graph g = runner::make_graph(rv.graph);
    rv.starts = {0, g.size() - 1};
    const runner::ExperimentSpec spec{.name = "", .scenario = rv};

    std::cout << "instance: " << family << " (" << g.summary() << ")\n";
    std::cout << "labels: " << la << " vs " << lb << ", adversary: " << adv_name
              << " (seed " << seed << ")\n";
    std::cout << "fingerprint: " << spec.fingerprint().hex() << "\n\n";
    std::cout << to_dot(g, family) << "\n";

    // A single-cell pipeline batch: the row goes to any configured CSV /
    // JSONL sinks, and --cache-dir turns re-runs into cache hits.
    const runner::PipelineReport report =
        runner::ExperimentPipeline(cli.options()).run({spec});
    const runner::ExperimentOutcome& out = report.outcomes.front();
    if (out.status == runner::RunStatus::Error) {
      std::cerr << "error: " << out.error << "\n";
      return 1;
    }
    if (cli.has_cache() && report.cache_hits > 0) {
      std::cout << "(outcome served from cache: "
                << cli.cache()->entry_path(spec) << ")\n";
    }

    // Schedule-shape statistics from the recorded adversary decisions.
    const runner::RendezvousOutcome& res = *out.rendezvous();
    std::cout << make_trace_stats(res.result, res.schedule).summary() << "\n";
    if (!out.ok()) return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
