// A command-line driver for the rendezvous simulator — the tool a
// downstream user reaches for first.
//
// Usage:
//   rv_cli [family] [n] [label_a] [label_b] [adversary] [seed]
//          [--csv <path>] [--jsonl <path>] [--cache-dir <dir>]
//
//   family     ring | path | complete | star | grid | torus | tree |
//              lollipop | petersen | hypercube          (default ring)
//   n          graph size parameter                      (default 6)
//   label_a/b  positive integer labels                   (default 5, 12)
//   adversary  fair | random | stall | burst | oscillating | avoider |
//              phase | skew                              (default random)
//   seed       adversary seed                            (default 42)
//
//   --csv/--jsonl write the typed result row to machine-readable sinks;
//   --cache-dir makes re-runs of the same instance load the recorded
//   outcome (including the schedule) from the persistent sweep cache.
//
// The instance is assembled into a typed RendezvousSpec (with schedule
// recording on) and executed by the experiment pipeline; the tool prints
// the instance (including its DOT rendering) and the traced schedule
// statistics.
#include <cstdint>
#include <iostream>
#include <string>

#include "graph/io.h"
#include "runner/cli.h"
#include "runner/registry.h"

namespace {

using namespace asyncrv;

std::string family_graph_id(const std::string& family, Node n) {
  if (family == "grid" || family == "torus") {
    return family + ":" + std::to_string(n) + "x" + std::to_string(n);
  }
  if (family == "tree") return "tree:" + std::to_string(n) + ":7";
  if (family == "lollipop") {
    return "lollipop:" + std::to_string(n) + ":" + std::to_string(n / 2);
  }
  if (family == "petersen") return "petersen";
  return family + ":" + std::to_string(n);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asyncrv;
  try {
    runner::PipelineCli cli;
    const std::vector<std::string> args = cli.parse(argc, argv);
    if (args.size() > 6) {
      std::cerr << "usage: rv_cli [family] [n] [label_a] [label_b] "
                   "[adversary] [seed] "
                << runner::PipelineCli::flags_help() << "\n";
      return 1;
    }
    const std::string family = !args.empty() ? args[0] : "ring";
    // Signed parse + range check: stoul would wrap "-3" into a
    // 4-billion-node graph request.
    const long n_arg = args.size() > 1 ? std::stol(args[1]) : 6;
    if (n_arg < 2 || n_arg > 100000) {
      std::cerr << "error: graph size must be in [2, 100000], got " << n_arg
                << "\n";
      return 1;
    }
    const Node n = static_cast<Node>(n_arg);
    const std::uint64_t la = args.size() > 2 ? std::stoull(args[2]) : 5;
    const std::uint64_t lb = args.size() > 3 ? std::stoull(args[3]) : 12;
    const std::string adv_name = args.size() > 4 ? args[4] : "random";
    const std::uint64_t seed = args.size() > 5 ? std::stoull(args[5]) : 42;

    runner::RendezvousSpec rv;
    rv.graph = family_graph_id(family, n);
    rv.adversary = adv_name;
    rv.seed = seed;
    rv.labels = {la, lb};
    rv.budget = 50'000'000;
    rv.record_schedule = true;

    const Graph g = runner::make_graph(rv.graph);
    rv.starts = {0, g.size() - 1};
    const runner::ExperimentSpec spec{.name = "", .scenario = rv};

    std::cout << "instance: " << family << " (" << g.summary() << ")\n";
    std::cout << "labels: " << la << " vs " << lb << ", adversary: " << adv_name
              << " (seed " << seed << ")\n";
    std::cout << "fingerprint: " << spec.fingerprint().hex() << "\n\n";
    std::cout << to_dot(g, family) << "\n";

    // A single-cell pipeline batch: the row goes to any configured CSV /
    // JSONL sinks, and --cache-dir turns re-runs into cache hits.
    const runner::PipelineReport report =
        runner::ExperimentPipeline(cli.options()).run({spec});
    const runner::ExperimentOutcome& out = report.outcomes.front();
    if (out.status == runner::RunStatus::Error) {
      std::cerr << "error: " << out.error << "\n";
      return 1;
    }
    if (cli.has_cache() && report.cache_hits > 0) {
      std::cout << "(outcome served from cache: "
                << cli.cache()->entry_path(spec) << ")\n";
    }

    // Schedule-shape statistics from the recorded adversary decisions.
    const runner::RendezvousOutcome& res = *out.rendezvous();
    std::cout << make_trace_stats(res.result, res.schedule).summary() << "\n";
    if (!out.ok()) return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
