// A command-line driver for the rendezvous simulator — the tool a
// downstream user reaches for first.
//
// Usage:
//   rv_cli [family] [n] [label_a] [label_b] [adversary] [seed]
//
//   family     ring | path | complete | star | grid | torus | tree |
//              lollipop | petersen | hypercube          (default ring)
//   n          graph size parameter                      (default 6)
//   label_a/b  positive integer labels                   (default 5, 12)
//   adversary  fair | random | stall | burst | oscillating | avoider |
//              phase | skew                              (default random)
//   seed       adversary seed                            (default 42)
//
// The instance is assembled into a ScenarioSpec (with schedule recording
// on) and executed by the scenario runner; the tool prints the instance
// (including its DOT rendering) and the traced schedule statistics.
#include <cstdint>
#include <iostream>
#include <string>

#include "graph/io.h"
#include "runner/registry.h"
#include "runner/scenario.h"

namespace {

using namespace asyncrv;

std::string family_graph_id(const std::string& family, Node n) {
  if (family == "grid" || family == "torus") {
    return family + ":" + std::to_string(n) + "x" + std::to_string(n);
  }
  if (family == "tree") return "tree:" + std::to_string(n) + ":7";
  if (family == "lollipop") {
    return "lollipop:" + std::to_string(n) + ":" + std::to_string(n / 2);
  }
  if (family == "petersen") return "petersen";
  return family + ":" + std::to_string(n);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asyncrv;
  try {
    const std::string family = argc > 1 ? argv[1] : "ring";
    // Signed parse + range check: stoul would wrap "-3" into a
    // 4-billion-node graph request.
    const long n_arg = argc > 2 ? std::stol(argv[2]) : 6;
    if (n_arg < 2 || n_arg > 100000) {
      std::cerr << "error: graph size must be in [2, 100000], got " << n_arg
                << "\n";
      return 1;
    }
    const Node n = static_cast<Node>(n_arg);
    const std::uint64_t la = argc > 3 ? std::stoull(argv[3]) : 5;
    const std::uint64_t lb = argc > 4 ? std::stoull(argv[4]) : 12;
    const std::string adv_name = argc > 5 ? argv[5] : "random";
    const std::uint64_t seed = argc > 6 ? std::stoull(argv[6]) : 42;

    runner::ScenarioSpec spec;
    spec.graph = family_graph_id(family, n);
    spec.adversary = adv_name;
    spec.seed = seed;
    spec.labels = {la, lb};
    spec.budget = 50'000'000;
    spec.record_schedule = true;

    const Graph g = runner::make_graph(spec.graph);
    spec.starts = {0, g.size() - 1};

    std::cout << "instance: " << family << " (" << g.summary() << ")\n";
    std::cout << "labels: " << la << " vs " << lb << ", adversary: " << adv_name
              << " (seed " << seed << ")\n\n";
    std::cout << to_dot(g, family) << "\n";

    const runner::ScenarioOutcome out = runner::run_scenario(spec);
    if (!out.error.empty()) {
      std::cerr << "error: " << out.error << "\n";
      return 1;
    }

    // Schedule-shape statistics from the recorded adversary decisions.
    std::cout << make_trace_stats(out.rv, out.schedule).summary() << "\n";
    if (!out.ok) return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
