// A command-line driver for the rendezvous simulator — the tool a
// downstream user reaches for first.
//
// Usage:
//   rv_cli [family] [n] [label_a] [label_b] [adversary] [seed]
//
//   family     ring | path | complete | star | grid | torus | tree |
//              lollipop | petersen | hypercube          (default ring)
//   n          graph size parameter                      (default 6)
//   label_a/b  positive integer labels                   (default 5, 12)
//   adversary  fair | random | stall | burst | oscillating | avoider |
//              phase | skew                              (default random)
//   seed       adversary seed                            (default 42)
//
// Prints the instance (including its DOT rendering), runs the rendezvous,
// and reports the traced schedule statistics.
#include <cstdint>
#include <iostream>
#include <string>

#include "graph/builders.h"
#include "graph/io.h"
#include "rv/rv_route.h"
#include "sim/trace.h"
#include "traj/traj.h"

namespace {

using namespace asyncrv;

Graph make_family(const std::string& family, Node n) {
  if (family == "ring") return make_ring(n);
  if (family == "path") return make_path(n);
  if (family == "complete") return make_complete(n);
  if (family == "star") return make_star(n);
  if (family == "grid") return make_grid(n, n);
  if (family == "torus") return make_torus(n, n);
  if (family == "tree") return make_random_tree(n, 7);
  if (family == "lollipop") return make_lollipop(n, n / 2);
  if (family == "petersen") return make_petersen();
  if (family == "hypercube") return make_hypercube(static_cast<int>(n));
  throw std::logic_error("unknown graph family: " + family);
}

std::unique_ptr<Adversary> make_adv(const std::string& name, std::uint64_t seed) {
  if (name == "fair") return make_fair_adversary();
  if (name == "random") return make_random_adversary(seed, 500);
  if (name == "stall") return make_stall_adversary(0, 2000);
  if (name == "burst") return make_burst_adversary(seed);
  if (name == "oscillating") return make_oscillating_adversary(seed);
  if (name == "avoider") return make_avoider_adversary(seed);
  if (name == "phase") return make_phase_adversary(seed);
  if (name == "skew") return make_skew_adversary(seed);
  throw std::logic_error("unknown adversary: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asyncrv;
  const std::string family = argc > 1 ? argv[1] : "ring";
  const Node n = argc > 2 ? static_cast<Node>(std::stoul(argv[2])) : 6;
  const std::uint64_t la = argc > 3 ? std::stoull(argv[3]) : 5;
  const std::uint64_t lb = argc > 4 ? std::stoull(argv[4]) : 12;
  const std::string adv_name = argc > 5 ? argv[5] : "random";
  const std::uint64_t seed = argc > 6 ? std::stoull(argv[6]) : 42;

  try {
    const Graph g = make_family(family, n);
    const TrajKit kit(PPoly::tiny(), 0x5eed0001);

    std::cout << "instance: " << family << " (" << g.summary() << ")\n";
    std::cout << "labels: " << la << " vs " << lb << ", adversary: " << adv_name
              << " (seed " << seed << ")\n\n";
    std::cout << to_dot(g, family) << "\n";

    auto ra = make_walker_route(
        g, 0, [&](Walker& w) { return rv_route(w, kit, la, nullptr); });
    const Node sb = g.size() - 1;
    auto rb = make_walker_route(
        g, sb, [&](Walker& w) { return rv_route(w, kit, lb, nullptr); });
    TwoAgentSim sim(g, ra, 0, rb, sb);

    Schedule schedule;
    const TraceStats stats =
        traced_run(sim, make_adv(adv_name, seed), 50'000'000, &schedule);
    std::cout << stats.summary() << "\n";
    if (!stats.result.met) return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
