// A command-line driver for the rendezvous simulator — the tool a
// downstream user reaches for first.
//
// Usage:
//   rv_cli [family] [n] [label_a] [label_b] [adversary] [seed]
//          [--csv <path>] [--jsonl <path>] [--cache-dir <dir>]
//   rv_cli search <graph-id> [objective] [optimizer] [evals] [seed]
//          [--csv <path>] [--jsonl <path>] [--cache-dir <dir>]
//
//   family     ring | path | complete | star | grid | torus | tree |
//              lollipop | petersen | hypercube          (default ring)
//   n          graph size parameter                      (default 6)
//   label_a/b  positive integer labels                   (default 5, 12)
//   adversary  fair | random | stall | burst | oscillating | avoider |
//              phase | skew                              (default random)
//   seed       adversary seed                            (default 42)
//
//   --csv/--jsonl write the typed result row to machine-readable sinks;
//   --cache-dir makes re-runs of the same instance load the recorded
//   outcome (including the schedule) from the persistent sweep cache.
//
// The instance is assembled into a typed RendezvousSpec (with schedule
// recording on) and executed by the experiment pipeline; the tool prints
// the instance (including its DOT rendering) and the traced schedule
// statistics.
//
// The `search` mode runs an optimizing worst-case adversary instead
// (src/search/, DESIGN.md §6): <graph-id> is any registry id ("petersen",
// "ring:12", "rreg:10,3@7"), objective is rv-cost | esst-phase |
// pi-margin (default rv-cost), optimizer is random | hill | anneal
// (default hill). Agents start at node 0 and the BFS-farthest node from
// it (adjacent starts would make every schedule meet instantly). The
// tool prints the worst schedule found (its genome, replayable), re-runs
// it to demonstrate the bit-identical replay, and reports any soundness
// violations loudly. Searches cache like any other scenario: re-running
// with --cache-dir is instant.
// The `daemon` command family talks to (or starts) the resident asyncrvd
// service (src/service/, DESIGN.md §9) in a fluent verb style:
//
//   rv_cli daemon start [--socket S] [--cache-dir D] [--memory-cap B]
//                       [--jobs N] [--foreground]
//   rv_cli daemon status | ping | metrics | drain | stop | evict [bytes]
//   rv_cli daemon run [family] [n] [label_a] [label_b] [adversary] [seed]
//   rv_cli daemon sweep e9 [--jsonl <path>]
//
// `daemon run` assembles the SAME spec the local default mode would, so a
// daemon with --cache-dir shares outcomes with batch runs byte-for-byte;
// `daemon sweep e9` submits the shared E9 battery (runner::e9_battery) and
// reports the daemon's end-line stats, including how many cells actually
// executed — the second submission of a warm daemon reports executed=0.
// The socket defaults to $ASYNCRVD_SOCKET, then /tmp/asyncrvd.sock.
//
// The `sweep scale` mode drives the sharded million-cell regime
// (DESIGN.md §10): partitions the scale_grid family into K fingerprint
// shards, forks one worker per shard against the shared --cache-dir, then
// merges by re-running the full grid through one pipeline (executed must
// be 0; rows land in --csv/--jsonl). Re-running after any interruption —
// including a worker lost to kill -9 — resumes from the committed cells:
//
//   rv_cli sweep scale [cells] --cache-dir D [--shards K] [--packed-cache]
//          [--shard-index I] [--kill-worker W --kill-after N] [pipeline flags]
//
// --shard-index runs one shard in-process and skips the merge (the
// cross-machine mode: point every machine at one shared cache dir).
// --kill-worker/--kill-after are fault injection for the resumption
// acceptance test. `rv_cli cache pack --cache-dir D` compacts the
// directory's loose entries and pack segments into one sealed segment.
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "graph/io.h"
#include "runner/cli.h"
#include "runner/encoding.h"
#include "runner/registry.h"
#include "runner/shard.h"
#include "search/objective.h"
#include "service/client.h"
#include "service/server.h"

namespace {

using namespace asyncrv;

std::string family_graph_id(const std::string& family, Node n) {
  if (family == "grid" || family == "torus") {
    return family + ":" + std::to_string(n) + "x" + std::to_string(n);
  }
  if (family == "tree") return "tree:" + std::to_string(n) + ":7";
  if (family == "lollipop") {
    return "lollipop:" + std::to_string(n) + ":" + std::to_string(n / 2);
  }
  if (family == "petersen") return "petersen";
  return family + ":" + std::to_string(n);
}

/// The node farthest from node 0 (smallest id among ties, by BFS): the
/// least degenerate default placement — adjacent starts (a ring's 0 and
/// n-1) cap every schedule at a near-instant meeting and make the search
/// pointless.
Node farthest_from_zero(const Graph& g) {
  std::vector<int> dist(g.size(), -1);
  std::vector<Node> queue = {0};
  dist[0] = 0;
  Node best = g.size() - 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Node v = queue[head];
    if (dist[v] > dist[best] || (dist[v] == dist[best] && v < best)) best = v;
    for (Port p = 0; p < g.degree(v); ++p) {
      const Node to = g.step(v, p).to;
      if (dist[to] < 0) {
        dist[to] = dist[v] + 1;
        queue.push_back(to);
      }
    }
  }
  return best;
}

/// The `search` mode: optimize an adversarial schedule, print and replay
/// the winner. Returns the process exit code.
int run_search_mode(runner::PipelineCli& cli,
                    const std::vector<std::string>& args) {
  if (args.size() > 6) {
    std::cerr << "usage: rv_cli search <graph-id> [objective] [optimizer] "
                 "[evals] [seed] "
              << runner::PipelineCli::flags_help() << "\n";
    return 1;
  }
  runner::SearchSpec se;
  se.graph = args.size() > 1 ? args[1] : "petersen";
  se.objective = args.size() > 2 ? args[2] : "rv-cost";
  se.optimizer = args.size() > 3 ? args[3] : "hill";
  if (args.size() > 4) {
    // Signed parse + range check: stoull would wrap "-1" into 1.8e19
    // evaluations and hang the process.
    const long long evals = std::stoll(args[4]);
    if (evals < 1 || evals > 100'000'000) {
      std::cerr << "error: evals must be in [1, 100000000], got " << args[4]
                << "\n";
      return 1;
    }
    se.evaluations = static_cast<std::uint64_t>(evals);
  } else {
    se.evaluations = 240;
  }
  if (args.size() > 5) {
    if (args[5].empty() ||
        args[5].find_first_not_of("0123456789") != std::string::npos) {
      std::cerr << "error: seed must be a non-negative integer, got "
                << args[5] << "\n";
      return 1;
    }
    se.seed = std::stoull(args[5]);
  }
  se.labels = {5, 12};
  se.budget = se.objective == "esst-phase" ? 25'000 : 40'000;

  const Graph g = runner::make_graph(se.graph);
  se.starts = {0, farthest_from_zero(g)};
  const runner::ExperimentSpec spec{.name = "", .scenario = se};

  std::cout << "searching: " << se.graph << " (" << g.summary() << "), "
            << se.objective << " via " << se.optimizer << ", "
            << se.evaluations << " evaluations (seed " << se.seed << ")\n";
  std::cout << "fingerprint: " << spec.fingerprint().hex() << "\n";

  const runner::PipelineReport report =
      runner::ExperimentPipeline(cli.options()).run({spec});
  const runner::ExperimentOutcome& out = report.outcomes.front();
  if (out.status == runner::RunStatus::Error) {
    std::cerr << "error: " << out.error << "\n";
    return 1;
  }
  const runner::SearchOutcome& so = *out.search();
  if (cli.has_cache() && report.cache_hits > 0) {
    std::cout << "(outcome served from cache: " << cli.cache()->entry_path(spec)
              << ")\n";
  }
  std::cout << "best score " << so.best_score << " (cost " << so.best_cost
            << ", met " << (so.best_met ? "yes" : "no");
  if (se.objective == "esst-phase") std::cout << ", phase " << so.best_phase;
  std::cout << ") after " << so.evaluations << " evaluations, "
            << so.improvements << " improvements\n";
  if (so.bound > 0) std::cout << "soundness bound: " << so.bound << "\n";
  if (se.objective == "pi-margin" && se.budget <= so.bound / 2) {
    std::cout << "(budget " << se.budget
              << " caps evaluations below pi_hat/2 — measuring slack; "
                 "violations are out of reach at this budget)\n";
  }
  if (so.violations > 0) {
    std::cout << "*** " << so.violations
              << " SOUNDNESS VIOLATION(S) FOUND — see DESIGN.md §6\n";
  }
  std::cout << "worst schedule genome: " << so.best_genome << "\n";

  // Replay the persisted genome from scratch: same spec + same genome =
  // the same run, bit for bit.
  const auto genome = search::ScheduleGenome::from_text(so.best_genome);
  if (!genome) {
    std::cerr << "error: winning genome failed to parse: " << so.best_genome
              << "\n";
    return 1;
  }
  const TrajKit kit(runner::make_ppoly(se.ppoly), se.kit_seed);
  const search::Evaluation replay =
      search::evaluate(runner::search_problem(se, g, kit), *genome, nullptr);
  std::cout << "replay: score " << replay.score << ", cost " << replay.cost
            << (replay.score == so.best_score && replay.cost == so.best_cost
                    ? " — bit-identical to the search's winner\n"
                    : " — MISMATCH (engine determinism bug!)\n");
  return replay.score == so.best_score ? 0 : 3;
}

// --- sharded sweep + cache maintenance ---------------------------------------

/// Strict non-negative integer or die with a usage hint.
std::uint64_t parse_count_or_die(const std::string& what,
                                 const std::string& v) {
  const auto parsed = runner::LineReader::parse_u64(v);
  if (!parsed) {
    std::cerr << "error: bad " << what << " value: " << v << "\n";
    std::exit(1);
  }
  return *parsed;
}

/// `rv_cli sweep scale` — the sharded, resumable big-grid driver.
int run_sweep_scale_mode(runner::PipelineCli& cli,
                         const std::vector<std::string>& args) {
  const auto usage = [] {
    std::cerr << "usage: rv_cli sweep scale [cells] --cache-dir <dir> "
                 "[--shards <k>] [--shard-index <i>] "
                 "[--kill-worker <i> --kill-after <n>] "
              << runner::PipelineCli::flags_help() << "\n";
    return 1;
  };
  std::uint64_t cells = 20'000;
  int shards = 4;
  int shard_index = -1;
  int kill_worker = -1;
  std::uint64_t kill_after = 0;
  bool have_cells = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "error: missing value after " << arg << "\n";
        std::exit(1);
      }
      return args[++i];
    };
    if (arg == "--shards") {
      shards = static_cast<int>(parse_count_or_die(arg, value()));
    } else if (arg == "--shard-index") {
      shard_index = static_cast<int>(parse_count_or_die(arg, value()));
    } else if (arg == "--kill-worker") {
      kill_worker = static_cast<int>(parse_count_or_die(arg, value()));
    } else if (arg == "--kill-after") {
      kill_after = parse_count_or_die(arg, value());
    } else if (!have_cells && !arg.empty() && arg[0] != '-') {
      cells = parse_count_or_die("cells", arg);
      have_cells = true;
    } else {
      return usage();
    }
  }
  if (shards < 1 || shards > 1024 || cells == 0 ||
      (kill_worker >= 0) != (kill_after > 0)) {
    return usage();
  }
  if (!cli.has_cache()) {
    std::cerr << "error: sweep scale needs --cache-dir (the shared "
                 "coordination substrate)\n";
    return 1;
  }

  const std::vector<runner::ExperimentSpec> specs = runner::scale_grid(cells);
  const auto plan = runner::plan_shards(specs, shards);
  std::cout << "plan: " << cells << " cells -> " << shards << " shards\n";
  for (int k = 0; k < shards; ++k) {
    std::cout << "shard " << k << ": " << plan[static_cast<std::size_t>(k)].size()
              << " cells\n";
  }

  if (shard_index >= 0) {
    // Cross-machine mode: this invocation IS one worker; some other
    // invocation merges once every shard has run.
    if (shard_index >= shards) return usage();
    runner::ShardWorkerOptions wopts;
    wopts.cache_dir = cli.cache_dir();
    wopts.cache = cli.cache_options();
    wopts.threads = cli.threads();
    wopts.batch = true;
    wopts.progress = cli.progress();
    wopts.kill_after = kill_after;
    const runner::ShardWorkerStats s =
        runner::run_shard(specs, plan[static_cast<std::size_t>(shard_index)], wopts);
    std::cout << "shard " << shard_index << " done: cells=" << s.cells
              << " hits=" << s.hits << " executed=" << s.executed
              << " fsyncs=" << s.fsyncs << " store_bytes=" << s.store_bytes
              << "\n";
    return 0;
  }

  runner::ShardDriverOptions dopts;
  dopts.cache_dir = cli.cache_dir();
  dopts.shards = shards;
  dopts.cache = cli.cache_options();
  dopts.threads_per_worker = cli.threads();
  dopts.batch = true;
  dopts.progress = cli.progress();
  dopts.kill_worker = kill_worker;
  dopts.kill_after = kill_after;
  const runner::ShardRun run = runner::run_sharded(specs, dopts);
  for (const runner::ShardWorkerResult& w : run.workers) {
    std::cout << "worker " << w.shard << " (pid " << w.pid << "): ";
    if (WIFSIGNALED(w.wait_status)) {
      std::cout << "killed by signal " << WTERMSIG(w.wait_status) << "\n";
    } else if (!WIFEXITED(w.wait_status) || WEXITSTATUS(w.wait_status) != 0 ||
               !w.reported) {
      std::cout << "exited "
                << (WIFEXITED(w.wait_status) ? WEXITSTATUS(w.wait_status) : -1)
                << " without a report\n";
    } else {
      std::cout << "exited 0, hits=" << w.stats.hits
                << " executed=" << w.stats.executed
                << " fsyncs=" << w.stats.fsyncs
                << " store_bytes=" << w.stats.store_bytes << "\n";
    }
  }
  // Fleet totals: every worker's registry snapshot rode the stats pipe and
  // merged into one cross-process view — print the headline counters.
  if (!run.fleet_metrics.empty()) {
    const auto c = [&](const char* name) -> std::uint64_t {
      const auto it = run.fleet_metrics.counters.find(name);
      return it == run.fleet_metrics.counters.end() ? 0 : it->second;
    };
    std::cout << "fleet metrics: cells=" << c("pipeline.cells")
              << " hits=" << c("pipeline.cache_hits")
              << " executed=" << c("pipeline.executed")
              << " batched_lanes=" << c("pipeline.batched_lanes")
              << " engine_sweeps=" << c("engine.sweeps") + c("batch.sweeps")
              << " store_bytes=" << c("sweepcache.store_bytes") << "\n";
  }
  if (!run.ok()) {
    // Never merge over a dead worker's hole: an in-process merge would
    // silently re-execute its missing cells and defeat every committed-cell
    // assertion. Re-running the driver resumes from the committed prefix.
    std::cerr << "sweep incomplete: a worker failed — re-run to resume from "
                 "the committed cells\n";
    return 4;
  }

  // Merge/verify: the whole grid through ONE pipeline against the shared
  // cache. Every cell must be a hit, and pipeline determinism makes the
  // emitted rows byte-identical to a single-process run at any shard count.
  runner::SweepCache merge_cache(cli.cache_dir(), cli.cache_options());
  runner::PipelineOptions popts = cli.options();
  popts.cache = &merge_cache;
  popts.batch = true;
  const runner::PipelineReport report =
      runner::ExperimentPipeline(popts).run(specs);
  std::cout << "merge: " << report.summary() << "\n";
  std::cout << "sweep: cells=" << cells << " hits=" << report.cache_hits
            << " executed=" << report.executed << " shards=" << shards << "\n";
  if (report.executed != 0) {
    std::cerr << "error: merge re-executed " << report.executed
              << " cells — the workers' commits did not cover the grid\n";
    return 3;
  }
  return 0;
}

/// `rv_cli cache pack` — offline compaction of a cache directory.
int run_cache_mode(runner::PipelineCli& cli,
                   const std::vector<std::string>& args) {
  if (args.size() != 2 || args[1] != "pack" || !cli.has_cache()) {
    std::cerr << "usage: rv_cli cache pack --cache-dir <dir>\n";
    return 1;
  }
  const runner::SweepCache::CompactStats cs = cli.cache()->compact();
  std::cout << "packed " << cli.cache_dir() << ": " << cs.records
            << " records (" << cs.bytes << " bytes) in one segment, "
            << cs.loose_migrated << " loose migrated, " << cs.segments_merged
            << " segments merged, " << cs.invalid_dropped
            << " invalid dropped\n";
  return 0;
}

// --- daemon command family ---------------------------------------------------

service::Server* g_daemon = nullptr;
void daemon_signal(int) {
  if (g_daemon != nullptr) g_daemon->signal_drain();
}

std::string default_socket() {
  const char* env = std::getenv("ASYNCRVD_SOCKET");
  return env != nullptr ? env : "/tmp/asyncrvd.sock";
}

/// "<n>[k|m|g]" in bytes.
std::optional<std::uint64_t> parse_byte_size(std::string s) {
  std::uint64_t scale = 1;
  if (!s.empty()) {
    const char c = s.back();
    if (c == 'k' || c == 'K') scale = 1ull << 10;
    if (c == 'm' || c == 'M') scale = 1ull << 20;
    if (c == 'g' || c == 'G') scale = 1ull << 30;
    if (scale != 1) s.pop_back();
  }
  const auto v = runner::LineReader::parse_u64(s);
  if (!v) return std::nullopt;
  return *v * scale;
}

int daemon_usage() {
  std::cerr
      << "usage: rv_cli daemon <command> [--socket <path>]\n"
      << "  start   [--cache-dir <dir>] [--memory-cap <bytes>] [--jobs <n>]\n"
      << "          [--queue <n>] [--no-batch] [--foreground]\n"
      << "  status | ping | metrics | drain | stop | evict [bytes]\n"
      << "  run     [family] [n] [label_a] [label_b] [adversary] [seed]\n"
      << "  sweep   e9 [--jsonl <path>]\n";
  return 1;
}

/// Runs the server in this process (the child of `start`, or --foreground).
int serve(const service::ServerOptions& options) {
  service::Server server(options);
  server.bind();
  g_daemon = &server;
  std::signal(SIGTERM, daemon_signal);
  std::signal(SIGINT, daemon_signal);
  std::signal(SIGPIPE, SIG_IGN);
  std::cout << "asyncrvd listening on " << options.socket_path << std::endl;
  const int rc = server.run();
  g_daemon = nullptr;
  return rc;
}

service::Client connect_or_die(const std::string& socket, int retry_ms = 0) {
  service::Client client;
  if (!client.connect(socket, retry_ms)) {
    std::cerr << "error: " << client.last_error()
              << " (is the daemon running? `rv_cli daemon start`)\n";
    std::exit(1);
  }
  return client;
}

int run_daemon_mode(int argc, char** argv) {
  std::vector<std::string> pos;
  service::ServerOptions sopts;
  sopts.socket_path = default_socket();
  bool foreground = false;
  std::string jsonl_path;
  std::string command;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto byte_value = [&](std::uint64_t& out) {
      const char* v = value();
      if (v == nullptr) return false;
      const auto parsed = parse_byte_size(v);
      if (!parsed) return false;
      out = *parsed;
      return true;
    };
    std::uint64_t n = 0;
    if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr) return daemon_usage();
      sopts.socket_path = v;
    } else if (arg == "--cache-dir") {
      const char* v = value();
      if (v == nullptr) return daemon_usage();
      sopts.cache_dir = v;
    } else if (arg == "--memory-cap") {
      if (!byte_value(sopts.memory_cap)) return daemon_usage();
    } else if (arg == "--jobs") {
      if (!byte_value(n) || n < 1 || n > 256) return daemon_usage();
      sopts.jobs = static_cast<int>(n);
    } else if (arg == "--queue") {
      if (!byte_value(n) || n > 100000) return daemon_usage();
      sopts.max_queue = static_cast<int>(n);
    } else if (arg == "--request-threads") {
      if (!byte_value(n) || n > 1024) return daemon_usage();
      sopts.threads_per_job = static_cast<int>(n);
    } else if (arg == "--no-batch") {
      sopts.batch = false;
    } else if (arg == "--foreground") {
      foreground = true;
    } else if (arg == "--jsonl") {
      const char* v = value();
      if (v == nullptr) return daemon_usage();
      jsonl_path = v;
    } else if (command.empty()) {
      command = arg;
    } else {
      pos.push_back(arg);
    }
  }
  if (command.empty()) return daemon_usage();

  if (command == "start") {
    if (foreground) return serve(sopts);
    const pid_t pid = fork();
    if (pid < 0) {
      std::cerr << "error: fork failed\n";
      return 1;
    }
    if (pid == 0) {
      // The daemon child. _exit keeps the parent's atexit/stdio state from
      // being torn down twice.
      try {
        _exit(serve(sopts));
      } catch (const std::exception& e) {
        std::cerr << "asyncrvd: " << e.what() << "\n";
        _exit(1);
      }
    }
    service::Client probe;
    if (!probe.connect(sopts.socket_path, /*retry_ms=*/5000) ||
        !probe.ping()) {
      std::cerr << "error: daemon did not come up on " << sopts.socket_path
                << "\n";
      return 1;
    }
    std::cout << "daemon ready on " << sopts.socket_path << " (pid " << pid
              << ")\n";
    return 0;
  }

  if (command == "status") {
    service::Client client = connect_or_die(sopts.socket_path);
    const auto kv = client.status();
    if (!kv) {
      std::cerr << "error: " << client.last_error() << "\n";
      return 1;
    }
    for (const auto& [key, val] : *kv) std::cout << key << "=" << val << "\n";
    return 0;
  }

  if (command == "ping") {
    service::Client client = connect_or_die(sopts.socket_path);
    if (!client.ping()) {
      std::cerr << "error: " << client.last_error() << "\n";
      return 1;
    }
    std::cout << "pong\n";
    return 0;
  }

  if (command == "metrics") {
    // The daemon's live obs::MetricsRegistry snapshot, re-emitted in its
    // exact asyncrv.metrics.v1 wire form (so the output pipes into any
    // from_text consumer).
    service::Client client = connect_or_die(sopts.socket_path);
    const auto snap = client.metrics();
    if (!snap) {
      std::cerr << "error: " << client.last_error() << "\n";
      return 1;
    }
    std::cout << snap->to_text();
    return 0;
  }

  if (command == "evict") {
    service::Client client = connect_or_die(sopts.socket_path);
    std::optional<std::uint64_t> cap;
    if (!pos.empty()) {
      cap = parse_byte_size(pos[0]);
      if (!cap) return daemon_usage();
    }
    const auto head = client.evict(cap);
    if (!head || !head->ok) {
      std::cerr << "error: " << client.last_error() << "\n";
      return 1;
    }
    std::cout << head->info << "\n";
    return 0;
  }

  if (command == "drain") {
    service::Client client = connect_or_die(sopts.socket_path);
    if (!client.drain()) {
      std::cerr << "error: " << client.last_error() << "\n";
      return 1;
    }
    std::cout << "drained\n";
    return 0;
  }

  if (command == "stop") {
    service::Client client = connect_or_die(sopts.socket_path);
    if (!client.shutdown()) {
      std::cerr << "error: " << client.last_error() << "\n";
      return 1;
    }
    std::cout << "shutting down\n";
    return 0;
  }

  if (command == "run") {
    // The same spec the local default mode assembles, submitted remotely —
    // a daemon with --cache-dir therefore shares outcomes with batch runs.
    if (pos.size() > 6) return daemon_usage();
    runner::RendezvousSpec rv;
    const std::string family = !pos.empty() ? pos[0] : "ring";
    const long n_arg = pos.size() > 1 ? std::stol(pos[1]) : 6;
    if (n_arg < 2 || n_arg > 100000) {
      std::cerr << "error: graph size must be in [2, 100000]\n";
      return 1;
    }
    rv.graph = family_graph_id(family, static_cast<Node>(n_arg));
    rv.labels = {pos.size() > 2 ? std::stoull(pos[2]) : 5,
                 pos.size() > 3 ? std::stoull(pos[3]) : 12};
    rv.adversary = pos.size() > 4 ? pos[4] : "random";
    rv.seed = pos.size() > 5 ? std::stoull(pos[5]) : 42;
    rv.budget = 50'000'000;
    rv.record_schedule = true;
    const Graph g = runner::make_graph(rv.graph);
    rv.starts = {0, g.size() - 1};
    const runner::ExperimentSpec spec{.name = "", .scenario = rv};
    std::cout << "fingerprint: " << spec.fingerprint().hex() << "\n";

    service::Client client = connect_or_die(sopts.socket_path);
    const auto stats = client.run(
        spec, [](const std::string& row) { std::cout << row << "\n"; });
    if (!stats) {
      std::cerr << "error: " << client.last_error() << "\n";
      return 1;
    }
    std::cout << stats->scenarios << " scenarios: ok=" << stats->ok
              << " unresolved=" << stats->unresolved
              << " errors=" << stats->errors
              << ", cache_hits=" << stats->cache_hits
              << " executed=" << stats->executed << "\n";
    return stats->errors == 0 ? 0 : 2;
  }

  if (command == "sweep") {
    if (pos.empty() || pos[0] != "e9") {
      std::cerr << "error: the named sweeps are: e9\n";
      return daemon_usage();
    }
    const std::vector<runner::ExperimentSpec> specs = runner::e9_battery();
    std::ofstream jsonl;
    if (!jsonl_path.empty()) {
      jsonl.open(jsonl_path);
      if (!jsonl) {
        std::cerr << "error: cannot write " << jsonl_path << "\n";
        return 1;
      }
    }
    service::Client client = connect_or_die(sopts.socket_path);
    std::uint64_t rows = 0;
    const auto stats = client.sweep(specs, [&](const std::string& row) {
      ++rows;
      if (jsonl.is_open()) jsonl << row << "\n";
    });
    if (!stats) {
      std::cerr << "error: " << client.last_error() << "\n";
      return 1;
    }
    std::cout << "e9: " << stats->scenarios << " scenarios (" << rows
              << " rows): ok=" << stats->ok
              << " unresolved=" << stats->unresolved
              << " errors=" << stats->errors
              << ", cache_hits=" << stats->cache_hits
              << " executed=" << stats->executed
              << " batched=" << stats->batched << "\n";
    return stats->errors == 0 ? 0 : 2;
  }

  std::cerr << "error: unknown daemon command: " << command << "\n";
  return daemon_usage();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asyncrv;
  // The daemon family has its own flag set — route it before PipelineCli
  // can claim --cache-dir and friends.
  if (argc > 1 && std::string(argv[1]) == "daemon") {
    try {
      return run_daemon_mode(argc, argv);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  try {
    runner::PipelineCli cli;
    const std::vector<std::string> args = cli.parse(argc, argv);
    if (!args.empty() && args[0] == "search") return run_search_mode(cli, args);
    if (!args.empty() && args[0] == "sweep") {
      if (args.size() < 2 || args[1] != "scale") {
        std::cerr << "error: the named sweeps are: scale\n";
        return 1;
      }
      return run_sweep_scale_mode(cli, {args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "cache") return run_cache_mode(cli, args);
    if (args.size() > 6) {
      std::cerr << "usage: rv_cli [family] [n] [label_a] [label_b] "
                   "[adversary] [seed] "
                << runner::PipelineCli::flags_help() << "\n";
      return 1;
    }
    const std::string family = !args.empty() ? args[0] : "ring";
    // Signed parse + range check: stoul would wrap "-3" into a
    // 4-billion-node graph request.
    const long n_arg = args.size() > 1 ? std::stol(args[1]) : 6;
    if (n_arg < 2 || n_arg > 100000) {
      std::cerr << "error: graph size must be in [2, 100000], got " << n_arg
                << "\n";
      return 1;
    }
    const Node n = static_cast<Node>(n_arg);
    const std::uint64_t la = args.size() > 2 ? std::stoull(args[2]) : 5;
    const std::uint64_t lb = args.size() > 3 ? std::stoull(args[3]) : 12;
    const std::string adv_name = args.size() > 4 ? args[4] : "random";
    const std::uint64_t seed = args.size() > 5 ? std::stoull(args[5]) : 42;

    runner::RendezvousSpec rv;
    rv.graph = family_graph_id(family, n);
    rv.adversary = adv_name;
    rv.seed = seed;
    rv.labels = {la, lb};
    rv.budget = 50'000'000;
    rv.record_schedule = true;

    const Graph g = runner::make_graph(rv.graph);
    rv.starts = {0, g.size() - 1};
    const runner::ExperimentSpec spec{.name = "", .scenario = rv};

    std::cout << "instance: " << family << " (" << g.summary() << ")\n";
    std::cout << "labels: " << la << " vs " << lb << ", adversary: " << adv_name
              << " (seed " << seed << ")\n";
    std::cout << "fingerprint: " << spec.fingerprint().hex() << "\n\n";
    std::cout << to_dot(g, family) << "\n";

    // A single-cell pipeline batch: the row goes to any configured CSV /
    // JSONL sinks, and --cache-dir turns re-runs into cache hits.
    const runner::PipelineReport report =
        runner::ExperimentPipeline(cli.options()).run({spec});
    const runner::ExperimentOutcome& out = report.outcomes.front();
    if (out.status == runner::RunStatus::Error) {
      std::cerr << "error: " << out.error << "\n";
      return 1;
    }
    if (cli.has_cache() && report.cache_hits > 0) {
      std::cout << "(outcome served from cache: "
                << cli.cache()->entry_path(spec) << ")\n";
    }

    // Schedule-shape statistics from the recorded adversary decisions.
    const runner::RendezvousOutcome& res = *out.rendezvous();
    std::cout << make_trace_stats(res.result, res.schedule).summary() << "\n";
    if (!out.ok()) return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
