// Quickstart: two asynchronous agents rendezvous in an unknown graph.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart
//
// Two agents with labels 5 and 12 are dropped on a ring of 6 nodes they
// know nothing about. Each follows Algorithm RV-asynch-poly; an adversary
// fully controls their relative speeds. The whole instance is one
// ExperimentSpec — a typed value describing graph, adversary, labels,
// starts and budget — and run_experiment executes it (ExperimentPipeline
// runs whole batches of these in parallel, with result sinks and a
// persistent sweep cache; see ring_rendezvous.cpp).
#include <cstdint>
#include <iostream>

#include "runner/outcome.h"

int main() {
  using namespace asyncrv;

  runner::RendezvousSpec rv;
  rv.graph = "ring:6";        // the unknown network (agents only see ports)
  rv.adversary = "random";    // random relative speeds, arbitrary quanta
  rv.seed = 42;
  rv.labels = {5, 12};        // each agent knows only its own label
  rv.starts = {0, 3};
  rv.budget = 5'000'000;
  const runner::ExperimentSpec spec{.name = "", .scenario = rv};

  const runner::ExperimentOutcome out = runner::run_experiment(spec);
  if (out.status == runner::RunStatus::Error) {
    std::cerr << "error: " << out.error << "\n";
    return 1;
  }

  std::cout << "scenario: " << spec.display() << "\n";
  std::cout << "fingerprint: " << spec.fingerprint().hex() << "\n";
  if (out.ok()) {
    const RendezvousResult& result = out.rendezvous()->result;
    std::cout << "met at " << result.meeting_point.str() << "\n";
    std::cout << "cost: " << out.cost << " edge traversals (agent a: "
              << result.traversals_a << ", agent b: " << result.traversals_b
              << ")\n";
  } else {
    std::cout << "no meeting within budget (this should never happen)\n";
    return 1;
  }
  return 0;
}
