// Quickstart: two asynchronous agents rendezvous in an unknown graph.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Two agents with labels 5 and 12 are dropped on a ring of 6 nodes they
// know nothing about. Each follows Algorithm RV-asynch-poly; an adversary
// fully controls their relative speeds. The simulation reports where they
// met and what it cost.
#include <cstdint>
#include <iostream>

#include "graph/builders.h"
#include "rv/rv_route.h"
#include "sim/adversary.h"
#include "sim/two_agent.h"

int main() {
  using namespace asyncrv;

  // The unknown network (the agents never see node ids, only local ports).
  const Graph g = make_ring(6);

  // The exploration-sequence kit: P(k) and the seeded UXS (see DESIGN.md).
  const TrajKit kit(PPoly::tiny(), /*seed=*/0x5eed0001);

  // Each agent knows only its own label.
  const std::uint64_t label_a = 5, label_b = 12;

  auto route_a = make_walker_route(
      g, /*start=*/0, [&](Walker& w) { return rv_route(w, kit, label_a, nullptr); });
  auto route_b = make_walker_route(
      g, /*start=*/3, [&](Walker& w) { return rv_route(w, kit, label_b, nullptr); });

  TwoAgentSim sim(g, route_a, 0, route_b, 3);

  // The adversary: random relative speeds, arbitrary per-step quanta.
  auto adversary = make_random_adversary(/*seed=*/42, /*bias_permille=*/500);

  const RendezvousResult res = sim.run(*adversary, /*max_total_traversals=*/5'000'000);

  std::cout << "graph: " << g.summary() << "\n";
  std::cout << "labels: " << label_a << " and " << label_b << "\n";
  if (res.met) {
    std::cout << "met at " << res.meeting_point.str() << "\n";
    std::cout << "cost: " << res.cost() << " edge traversals (agent a: "
              << res.traversals_a << ", agent b: " << res.traversals_b << ")\n";
  } else {
    std::cout << "no meeting within budget (this should never happen)\n";
    return 1;
  }
  return 0;
}
