// Quickstart: two asynchronous agents rendezvous in an unknown graph.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart
//
// Two agents with labels 5 and 12 are dropped on a ring of 6 nodes they
// know nothing about. Each follows Algorithm RV-asynch-poly; an adversary
// fully controls their relative speeds. The whole instance is one
// ScenarioSpec — a plain value describing graph, adversary, labels, starts
// and budget — and run_scenario executes it (ScenarioRunner runs whole
// batches of these in parallel; see ring_rendezvous.cpp).
#include <cstdint>
#include <iostream>

#include "runner/scenario.h"

int main() {
  using namespace asyncrv;

  runner::ScenarioSpec spec;
  spec.graph = "ring:6";        // the unknown network (agents only see ports)
  spec.adversary = "random";    // random relative speeds, arbitrary quanta
  spec.seed = 42;
  spec.labels = {5, 12};        // each agent knows only its own label
  spec.starts = {0, 3};
  spec.budget = 5'000'000;

  const runner::ScenarioOutcome out = runner::run_scenario(spec);
  if (!out.error.empty()) {
    std::cerr << "error: " << out.error << "\n";
    return 1;
  }

  std::cout << "scenario: " << spec.display() << "\n";
  if (out.ok) {
    std::cout << "met at " << out.rv.meeting_point.str() << "\n";
    std::cout << "cost: " << out.cost << " edge traversals (agent a: "
              << out.rv.traversals_a << ", agent b: " << out.rv.traversals_b
              << ")\n";
  } else {
    std::cout << "no meeting within budget (this should never happen)\n";
    return 1;
  }
  return 0;
}
