// Scenario: software agents meeting in an anonymous token-ring network.
//
// The paper's motivating setting — two software agents injected into a
// network whose nodes expose no identities, moving at speeds dictated by
// network congestion (the adversary). This example sweeps ring sizes and
// adversary strategies as one ExperimentPipeline batch (executed across a
// thread pool) and prints a cost matrix through the Console sink,
// illustrating the paper's polynomial-cost guarantee in the scenario its
// introduction motivates.
//
// Like every pipeline tool it accepts the shared sweep flags — e.g.
//   ./build/ring_rendezvous --jsonl sweep.jsonl --cache-dir .sweep-cache
// writes the machine-readable rows and makes a re-run serve every cell
// from the persistent cache (byte-identical output, zero simulations).
#include <cstdint>
#include <iostream>

#include "runner/cli.h"
#include "runner/registry.h"

int main(int argc, char** argv) {
  using namespace asyncrv;
  runner::PipelineCli cli;
  if (!cli.parse_flags_only("ring_rendezvous", argc, argv)) return 1;

  const std::uint64_t label_a = 6, label_b = 17;

  std::vector<runner::ExperimentSpec> specs;
  for (Node n : {Node{4}, Node{6}, Node{8}, Node{10}}) {
    for (const std::string& adv : adversary_battery_names()) {
      runner::RendezvousSpec rv;
      rv.graph = "ring:" + std::to_string(n);
      rv.adversary = adv;
      rv.seed = runner::battery_seed(adv, 2024);
      rv.labels = {label_a, label_b};
      rv.starts = {0, n / 2};
      rv.budget = 20'000'000;
      specs.push_back({.name = "", .scenario = std::move(rv)});
    }
  }

  const runner::PipelineReport report =
      runner::ExperimentPipeline(cli.options()).run(std::move(specs));

  std::cout << "Asynchronous rendezvous on anonymous rings, labels ("
            << label_a << ", " << label_b << ")\n";
  runner::ConsoleSink console;
  const runner::Pivot matrix =
      runner::pivot(report.schema, report.rows, "graph", "adversary",
                    runner::cost_or_status(report.schema, "-"));
  runner::emit(console, matrix.schema, matrix.rows);

  std::cout << "\n" << report.summary() << "\n";
  if (cli.has_cache()) {
    std::cout << "cache: " << report.cache_hits << " hits, " << report.executed
              << " executed\n";
  }
  return report.totals.errored == 0 ? 0 : 1;
}
