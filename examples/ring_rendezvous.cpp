// Scenario: software agents meeting in an anonymous token-ring network.
//
// The paper's motivating setting — two software agents injected into a
// network whose nodes expose no identities, moving at speeds dictated by
// network congestion (the adversary). This example sweeps ring sizes and
// adversary strategies as one ScenarioRunner batch (executed across a
// thread pool) and prints a cost table, illustrating the paper's
// polynomial-cost guarantee in the scenario its introduction motivates.
#include <cstdint>
#include <iomanip>
#include <iostream>

#include "runner/registry.h"
#include "runner/runner.h"

int main() {
  using namespace asyncrv;
  const std::uint64_t label_a = 6, label_b = 17;

  std::vector<runner::ScenarioSpec> specs;
  const auto names = adversary_battery_names();
  for (Node n : {Node{4}, Node{6}, Node{8}, Node{10}}) {
    for (const std::string& adv : names) {
      runner::ScenarioSpec spec;
      spec.graph = "ring:" + std::to_string(n);
      spec.adversary = adv;
      spec.seed = runner::battery_seed(adv, 2024);
      spec.labels = {label_a, label_b};
      spec.starts = {0, n / 2};
      spec.budget = 20'000'000;
      specs.push_back(std::move(spec));
    }
  }

  const runner::ScenarioReport report = runner::ScenarioRunner().run(specs);

  std::cout << "Asynchronous rendezvous on anonymous rings, labels ("
            << label_a << ", " << label_b << ")\n";
  std::cout << std::setw(8) << "ring n" << std::setw(14) << "adversary"
            << std::setw(12) << "cost" << std::setw(18) << "meeting point\n";
  std::size_t i = 0;
  for (Node n : {Node{4}, Node{6}, Node{8}, Node{10}}) {
    for (const std::string& adv : names) {
      const runner::ScenarioOutcome& out = report.outcomes[i++];
      std::cout << std::setw(8) << n << std::setw(14) << adv << std::setw(12)
                << (out.ok ? std::to_string(out.cost) : "-") << std::setw(18)
                << (out.ok ? out.rv.meeting_point.str() : "none") << "\n";
    }
  }
  std::cout << "\n" << report.summary() << "\n";
  return report.errored == 0 ? 0 : 1;
}
