// Scenario: software agents meeting in an anonymous token-ring network.
//
// The paper's motivating setting — two software agents injected into a
// network whose nodes expose no identities, moving at speeds dictated by
// network congestion (the adversary). This example sweeps ring sizes and
// adversary strategies and prints a cost table, illustrating the paper's
// polynomial-cost guarantee in the scenario its introduction motivates.
#include <cstdint>
#include <iomanip>
#include <iostream>

#include "graph/builders.h"
#include "rv/label.h"
#include "rv/rv_route.h"
#include "sim/adversary.h"
#include "sim/two_agent.h"

int main() {
  using namespace asyncrv;
  const TrajKit kit(PPoly::tiny(), 0x5eed0001);
  const std::uint64_t label_a = 6, label_b = 17;

  std::cout << "Asynchronous rendezvous on anonymous rings, labels ("
            << label_a << ", " << label_b << ")\n";
  std::cout << std::setw(8) << "ring n" << std::setw(14) << "adversary"
            << std::setw(12) << "cost" << std::setw(18) << "meeting point\n";

  for (Node n : {Node{4}, Node{6}, Node{8}, Node{10}}) {
    const Graph g = make_ring(n);
    auto names = adversary_battery_names();
    std::size_t ai = 0;
    for (auto& adv : adversary_battery(/*seed=*/2024)) {
      auto route_a = make_walker_route(
          g, 0, [&](Walker& w) { return rv_route(w, kit, label_a, nullptr); });
      auto route_b = make_walker_route(g, n / 2, [&](Walker& w) {
        return rv_route(w, kit, label_b, nullptr);
      });
      TwoAgentSim sim(g, route_a, 0, route_b, n / 2);
      const RendezvousResult res = sim.run(*adv, 20'000'000);
      std::cout << std::setw(8) << n << std::setw(14) << names[ai]
                << std::setw(12) << (res.met ? std::to_string(res.cost()) : "-")
                << std::setw(18) << (res.met ? res.meeting_point.str() : "none")
                << "\n";
      ++ai;
    }
  }
  return 0;
}
