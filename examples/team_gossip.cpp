// Scenario: a team of mobile agents of unknown size solves team size,
// leader election, perfect renaming and gossiping (Section 4).
//
// Four agents with arbitrary labels and private payloads are dropped on an
// anonymous network; two are dormant until woken. The whole instance —
// including the per-agent dormancy and wake schedule — is one SGL
// ScenarioSpec executed by run_scenario; every agent ends up outputting
// the complete roster, from which all four classic problems are answered
// locally.
#include <cstdint>
#include <iostream>

#include "runner/scenario.h"

int main() {
  using namespace asyncrv;

  runner::ScenarioSpec spec;
  spec.kind = runner::ScenarioKind::Sgl;
  spec.graph = "ringchord:5";
  spec.budget = 400'000'000;
  spec.seed = 7;

  const std::uint64_t labels[] = {19, 4, 32, 11};
  const char* payloads[] = {"temperature=21C", "humidity=40%", "door=closed",
                            "battery=87%"};
  for (int i = 0; i < 4; ++i) {
    SglAgentSpec agent;
    agent.start = static_cast<Node>(i);
    agent.label = labels[i];
    agent.value = payloads[i];
    agent.initially_awake = i < 2;  // agents 2 and 3 start dormant
    agent.wake_after_units =
        i == 2 ? 100 * static_cast<std::uint64_t>(kEdgeUnits) : 0;
    spec.sgl_team.push_back(agent);
  }

  std::cout << "Team of " << spec.sgl_team.size() << " agents on "
            << spec.graph
            << " (2 dormant; one woken by the adversary, one by a visit)\n\n";

  const runner::ScenarioOutcome out = runner::run_scenario(spec);
  if (!out.error.empty()) {
    std::cerr << "error: " << out.error << "\n";
    return 1;
  }
  if (!out.ok) {
    std::cout << "run did not complete (budget=" << out.sgl.budget_exhausted
              << ", stuck=" << out.sgl.stuck << ")\n";
    return 1;
  }

  std::cout << "total cost: " << out.cost << " edge traversals\n\n";
  for (std::size_t i = 0; i < spec.sgl_team.size(); ++i) {
    const std::uint64_t lab = spec.sgl_team[i].label;
    std::cout << "agent " << lab << " ("
              << to_string(out.sgl.final_states[i]) << "):\n";
    std::cout << "  team size : " << out.sgl_apps.team_size.at(lab) << "\n";
    std::cout << "  leader    : " << out.sgl_apps.leader.at(lab) << "\n";
    std::cout << "  new name  : " << out.sgl_apps.new_name.at(lab) << "\n";
    std::cout << "  gossip    : ";
    for (const auto& [l, v] : out.sgl_apps.gossip.at(lab)) {
      std::cout << l << "->\"" << v << "\" ";
    }
    std::cout << "\n";
  }
  return 0;
}
