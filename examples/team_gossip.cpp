// Scenario: a team of mobile agents of unknown size solves team size,
// leader election, perfect renaming and gossiping (Section 4).
//
// Four agents with arbitrary labels and private payloads are dropped on an
// anonymous network; two are dormant until woken. Running Algorithm SGL,
// every agent ends up outputting the complete roster — from which all four
// classic problems are answered locally.
#include <cstdint>
#include <iostream>

#include "graph/builders.h"
#include "sgl/apps.h"

int main() {
  using namespace asyncrv;
  const Graph g = make_ring_with_chord(5);
  const TrajKit kit(PPoly::tiny(), 0x5eed0001);

  std::vector<SglAgentSpec> team;
  const std::uint64_t labels[] = {19, 4, 32, 11};
  const char* payloads[] = {"temperature=21C", "humidity=40%", "door=closed",
                            "battery=87%"};
  for (int i = 0; i < 4; ++i) {
    SglAgentSpec spec;
    spec.start = static_cast<Node>(i);
    spec.label = labels[i];
    spec.value = payloads[i];
    spec.initially_awake = i < 2;  // agents 2 and 3 start dormant
    spec.wake_after_units =
        i == 2 ? 100 * static_cast<std::uint64_t>(kEdgeUnits) : 0;
    team.push_back(spec);
  }

  std::cout << "Team of " << team.size() << " agents on " << g.summary()
            << " (2 dormant; one woken by the adversary, one by a visit)\n\n";

  const SglSolveOutcome out =
      solve_all_problems(g, kit, SglConfig{}, team, 400'000'000, /*seed=*/7);

  if (!out.run.completed) {
    std::cout << "run did not complete (budget=" << out.run.budget_exhausted
              << ", stuck=" << out.run.stuck << ")\n";
    return 1;
  }

  std::cout << "total cost: " << out.run.total_traversals
            << " edge traversals\n\n";
  for (std::size_t i = 0; i < team.size(); ++i) {
    const std::uint64_t lab = team[i].label;
    std::cout << "agent " << lab << " (" << to_string(out.run.final_states[i])
              << "):\n";
    std::cout << "  team size : " << out.apps.team_size.at(lab) << "\n";
    std::cout << "  leader    : " << out.apps.leader.at(lab) << "\n";
    std::cout << "  new name  : " << out.apps.new_name.at(lab) << "\n";
    std::cout << "  gossip    : ";
    for (const auto& [l, v] : out.apps.gossip.at(lab)) {
      std::cout << l << "->\"" << v << "\" ";
    }
    std::cout << "\n";
  }
  return 0;
}
