// Scenario: a team of mobile agents of unknown size solves team size,
// leader election, perfect renaming and gossiping (Section 4).
//
// Four agents with arbitrary labels and private payloads are dropped on an
// anonymous network; two are dormant until woken. The whole instance —
// including the per-agent dormancy and wake schedule — is one typed
// SglSpec executed by run_experiment; every agent ends up outputting the
// complete roster, from which all four classic problems are answered
// locally.
#include <cstdint>
#include <iostream>

#include "runner/outcome.h"

int main() {
  using namespace asyncrv;

  runner::SglSpec sgl;
  sgl.graph = "ringchord:5";
  sgl.budget = 400'000'000;
  sgl.seed = 7;

  const std::uint64_t labels[] = {19, 4, 32, 11};
  const char* payloads[] = {"temperature=21C", "humidity=40%", "door=closed",
                            "battery=87%"};
  for (int i = 0; i < 4; ++i) {
    SglAgentSpec agent;
    agent.start = static_cast<Node>(i);
    agent.label = labels[i];
    agent.value = payloads[i];
    agent.initially_awake = i < 2;  // agents 2 and 3 start dormant
    agent.wake_after_units =
        i == 2 ? 100 * static_cast<std::uint64_t>(kEdgeUnits) : 0;
    sgl.team.push_back(agent);
  }
  const runner::ExperimentSpec spec{.name = "", .scenario = sgl};

  std::cout << "Team of " << sgl.team.size() << " agents on " << sgl.graph
            << " (2 dormant; one woken by the adversary, one by a visit)\n\n";

  const runner::ExperimentOutcome out = runner::run_experiment(spec);
  if (out.status == runner::RunStatus::Error) {
    std::cerr << "error: " << out.error << "\n";
    return 1;
  }
  const runner::SglOutcome& result = *out.sgl();
  if (!out.ok()) {
    std::cout << "run did not complete (budget=" << result.run.budget_exhausted
              << ", stuck=" << result.run.stuck << ")\n";
    return 1;
  }

  std::cout << "total cost: " << out.cost << " edge traversals\n\n";
  for (std::size_t i = 0; i < sgl.team.size(); ++i) {
    const std::uint64_t lab = sgl.team[i].label;
    std::cout << "agent " << lab << " ("
              << to_string(result.run.final_states[i]) << "):\n";
    std::cout << "  team size : " << result.apps.team_size.at(lab) << "\n";
    std::cout << "  leader    : " << result.apps.leader.at(lab) << "\n";
    std::cout << "  new name  : " << result.apps.new_name.at(lab) << "\n";
    std::cout << "  gossip    : ";
    for (const auto& [l, v] : result.apps.gossip.at(lab)) {
      std::cout << l << "->\"" << v << "\" ";
    }
    std::cout << "\n";
  }
  return 0;
}
